"""The O(sqrt(n))-time "sync dictionary" warm-up protocol (Section 5.2).

Before generalizing to depth-``H`` history trees, the paper presents a
simpler sublinear collision detector: every agent keeps a dictionary,
keyed by the names of agents it has encountered, of the last shared
``sync`` value generated with that name.  When two agents meet they
first compare records -- a disagreement (or a one-sided record) proves
that one of them previously met a *different* agent carrying the same
name -- then overwrite both records with a fresh shared random value.

From a configuration with two agents sharing a name, some third agent
meets both within O(sqrt(n)) time (a birthday argument), and the second
meeting exposes the collision with probability ``1 - 1/S_max``.  This
protocol is exactly Sublinear-Time-SSR's behaviour at tree depth
``H = 1`` (each agent knows one hop of history), packaged with the same
roster/reset machinery; we implement it independently with plain
dictionaries both as a faithful rendition of the paper's warm-up and as
a cross-check of the tree implementation at ``H = 1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.protocols.base import RankingProtocol
from repro.protocols.parameters import SublinearParameters, calibrated_sublinear
from repro.protocols.propagate_reset import ResetHooks, propagate_reset_interaction
from repro.protocols.sublinear.names import (
    EMPTY_NAME,
    append_random_bit,
    fresh_unique_names,
    is_valid_name,
    random_name,
    rank_in_roster,
)
from repro.statics.schema import (
    Anything,
    Constraint,
    FieldSpec,
    IntRange,
    Predicate,
    RoleSchema,
    StateSchema,
    register_schema,
)


class DictRole(Enum):
    COLLECTING = "collecting"
    RESETTING = "resetting"


@dataclass
class DictAgent:
    """One agent of the sync-dictionary protocol."""

    role: DictRole
    name: str
    rank: int = 1
    roster: frozenset = frozenset()
    syncs: Dict[str, int] = field(default_factory=dict)
    resetcount: int = 0
    delaytimer: int = 0


class SyncDictionarySSR(RankingProtocol[DictAgent]):
    """Self-stabilizing ranking via per-name sync dictionaries."""

    silent = False  # sync values are refreshed forever

    def __init__(self, n: int, params: Optional[SublinearParameters] = None):
        super().__init__(n)
        self.params = params or calibrated_sublinear(n, h=1)
        self.hooks: ResetHooks[DictAgent] = ResetHooks(
            is_resetting=lambda s: s.role is DictRole.RESETTING,
            enter_resetting=self._enter_resetting,
            do_reset=self._do_reset,
        )

    # ------------------------------------------------------------------
    # Role switches
    # ------------------------------------------------------------------

    @staticmethod
    def _clear_collecting_fields(agent: DictAgent) -> None:
        agent.rank = 1
        agent.roster = frozenset()
        agent.syncs = {}

    def _enter_resetting(self, agent: DictAgent, rng: random.Random) -> None:
        self._clear_collecting_fields(agent)
        agent.role = DictRole.RESETTING

    def _trigger(self, agent: DictAgent) -> None:
        self._clear_collecting_fields(agent)
        agent.role = DictRole.RESETTING
        agent.resetcount = self.params.reset.r_max
        agent.delaytimer = 0

    def _do_reset(self, agent: DictAgent, rng: random.Random) -> None:
        agent.role = DictRole.COLLECTING
        agent.resetcount = 0
        agent.delaytimer = 0
        agent.rank = 1
        agent.roster = frozenset((agent.name,))
        agent.syncs = {}

    # ------------------------------------------------------------------
    # Collision detection
    # ------------------------------------------------------------------

    @staticmethod
    def records_collide(a: DictAgent, b: DictAgent) -> bool:
        """Whether the two agents' mutual records expose a collision.

        Honest executions keep records perfectly paired: entries are
        created and refreshed for both parties in the same interaction
        and never removed.  A one-sided record, a disagreeing pair, or a
        shared name all certify that a same-named impostor exists.
        """
        if a.name == b.name:
            return True
        a_has = b.name in a.syncs
        b_has = a.name in b.syncs
        if a_has != b_has:
            return True
        return a_has and a.syncs[b.name] != b.syncs[a.name]

    # ------------------------------------------------------------------
    # Transition
    # ------------------------------------------------------------------

    def transition(
        self, initiator: DictAgent, responder: DictAgent, rng: random.Random
    ) -> Tuple[DictAgent, DictAgent]:
        a, b = initiator, responder
        if a.role is DictRole.COLLECTING and b.role is DictRole.COLLECTING:
            # Includes the participants' own names: see the matching
            # comment in sublinear/protocol.py (repairs adversarial
            # rosters that violate the ``name in roster`` invariant).
            union = a.roster | b.roster | {a.name, b.name}
            if self.records_collide(a, b) or len(union) > self.n:
                self._trigger(a)
                self._trigger(b)
            else:
                sync = rng.randint(1, self.params.s_max)
                a.syncs[b.name] = sync
                b.syncs[a.name] = sync
                a.roster = union
                b.roster = union
                if len(union) == self.n:
                    for agent in (a, b):
                        rank = rank_in_roster(agent.name, union)
                        if rank is not None:
                            agent.rank = rank
        else:
            propagate_reset_interaction(a, b, self.params.reset, self.hooks, rng)
            for agent in (a, b):
                if agent.role is not DictRole.RESETTING:
                    continue
                if agent.resetcount > 0:
                    agent.name = EMPTY_NAME
                elif len(agent.name) < self.params.name_bits:
                    agent.name = append_random_bit(agent.name, rng)
        return a, b

    # ------------------------------------------------------------------
    # States
    # ------------------------------------------------------------------

    def initial_state(self, rng: random.Random) -> DictAgent:
        name = random_name(self.params.name_bits, rng)
        return DictAgent(
            role=DictRole.COLLECTING, name=name, roster=frozenset((name,))
        )

    def unique_names_configuration(self, rng: random.Random) -> List[DictAgent]:
        return [
            DictAgent(role=DictRole.COLLECTING, name=name, roster=frozenset((name,)))
            for name in fresh_unique_names(self.n, self.params.name_bits, rng)
        ]

    def random_state(self, rng: random.Random) -> DictAgent:
        length = rng.choice((0, self.params.name_bits, self.params.name_bits))
        name = random_name(length, rng) if length else EMPTY_NAME
        if rng.random() < 0.5:
            pool = [random_name(self.params.name_bits, rng) for _ in range(4)]
            roster = frozenset(
                rng.choice(pool) for _ in range(rng.randrange(self.n + 1))
            )
            syncs = {
                rng.choice(pool): rng.randint(1, self.params.s_max)
                for _ in range(rng.randrange(4))
            }
            return DictAgent(
                role=DictRole.COLLECTING,
                name=name,
                rank=rng.randint(1, self.n),
                roster=frozenset(list(roster)[: self.n]),
                syncs=syncs,
            )
        resetcount = rng.randrange(self.params.reset.r_max + 1)
        delaytimer = (
            rng.randrange(self.params.reset.d_max + 1) if resetcount == 0 else 0
        )
        return DictAgent(
            role=DictRole.RESETTING,
            name=name,
            resetcount=resetcount,
            delaytimer=delaytimer,
        )

    def rank_of(self, state: DictAgent) -> Optional[int]:
        if state.role is DictRole.COLLECTING:
            return state.rank
        return None

    def summarize(self, state: DictAgent):
        if state.role is DictRole.COLLECTING:
            return ("C", state.name, state.rank, state.roster)
        return ("R", state.name, state.resetcount, state.delaytimer)

    def describe(self, state: DictAgent) -> str:
        if state.role is DictRole.COLLECTING:
            return (
                f"collecting(name={state.name or 'eps'}, rank={state.rank}, "
                f"|roster|={len(state.roster)}, |syncs|={len(state.syncs)})"
            )
        kind = "propagating" if state.resetcount > 0 else "dormant"
        return (
            f"resetting[{kind}](name={state.name or 'eps'}, "
            f"rc={state.resetcount}, delay={state.delaytimer})"
        )


# ---------------------------------------------------------------------------
# Declared state schema (consumed by repro.core.invariants and repro.statics)
# ---------------------------------------------------------------------------


def _check_syncs(protocol: SyncDictionarySSR, state: DictAgent):
    params = protocol.params
    problems = []
    if len(state.roster) > protocol.n:
        problems.append(f"roster size {len(state.roster)} exceeds n={protocol.n}")
    for name, sync in state.syncs.items():
        if not 1 <= sync <= params.s_max:
            problems.append(f"sync {sync} for {name!r} outside 1..{params.s_max}")
            break
    return problems


@register_schema(SyncDictionarySSR)
def _sync_dictionary_schema(protocol: SyncDictionarySSR) -> StateSchema:
    """Per-name sync dictionaries: validated, not enumerable."""
    params = protocol.params
    name_field = FieldSpec(
        "name",
        Predicate(
            lambda value: is_valid_name(value, params.name_bits),
            f"{{0,1}}^<={params.name_bits}",
        ),
    )
    collecting = RoleSchema(
        role=DictRole.COLLECTING,
        fields=(
            name_field,
            FieldSpec("rank", IntRange(1, protocol.n)),
            FieldSpec("roster", Anything()),
            FieldSpec("syncs", Anything(), in_key=False),
        ),
        constraints=(Constraint("sync-records", lambda s: _check_syncs(protocol, s)),),
    )
    resetting = RoleSchema(
        role=DictRole.RESETTING,
        fields=(
            name_field,
            FieldSpec("resetcount", IntRange(0, params.reset.r_max)),
            FieldSpec("delaytimer", IntRange(0, params.reset.d_max)),
        ),
    )
    return StateSchema("SyncDictionarySSR", [collecting, resetting])
