"""Leader election on top of ranking.

Every protocol in this package solves self-stabilizing *ranking*, which
subsumes leader election: the agent holding rank 1 is the leader (the
paper omits the explicit ``leader`` bit for exactly this reason).  This
module makes the derivation concrete:

* :func:`leader_flags` / :func:`count_leaders` -- read the leader bit
  out of any ranking protocol's configuration;
* :class:`ImmobilizedLeaderProtocol` -- the transform of the paper's
  footnote 7: a protocol solving SSLE may let the single leader *bit*
  hop between agents; swapping the two post-interaction states whenever
  an interaction would hand leadership from one participant to the other
  pins the bit to one physical agent, without changing the multiset of
  states (and hence without changing any correctness or complexity
  property in the complete-graph model).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, TypeVar

from repro.protocols.base import RankingProtocol
from repro.statics.schema import StateSchema, register_schema, schema_for

S = TypeVar("S")


def leader_flags(protocol: RankingProtocol[S], states: Sequence[S]) -> List[bool]:
    """Per-agent leader bits (rank 1 = leader)."""
    return [protocol.is_leader(state) for state in states]


def count_leaders(protocol: RankingProtocol[S], states: Sequence[S]) -> int:
    """Number of agents currently holding the leader bit."""
    return sum(leader_flags(protocol, states))


def has_unique_leader(protocol: RankingProtocol[S], states: Sequence[S]) -> bool:
    """The leader-election correctness predicate."""
    return count_leaders(protocol, states) == 1


class ImmobilizedLeaderProtocol(RankingProtocol[S]):
    """Wraps a ranking protocol so the leader bit never changes agents.

    If an interaction of the underlying protocol would transfer the
    leader bit from one participant to the other, the two resulting
    states are swapped (footnote 7 of the paper).  Agents are anonymous
    and the graph complete, so the swapped execution is statistically
    indistinguishable from the original -- only the identity of the
    physical agent holding each state changes.
    """

    def __init__(self, inner: RankingProtocol[S]):
        super().__init__(inner.n)
        self.inner = inner
        self.silent = inner.silent

    def transition(self, initiator: S, responder: S, rng: random.Random) -> Tuple[S, S]:
        led_a = self.inner.is_leader(initiator)
        led_b = self.inner.is_leader(responder)
        new_a, new_b = self.inner.transition(initiator, responder, rng)
        leads_a = self.inner.is_leader(new_a)
        leads_b = self.inner.is_leader(new_b)
        transferred = (led_a and not led_b and leads_b and not leads_a) or (
            led_b and not led_a and leads_a and not leads_b
        )
        if transferred:
            return new_b, new_a
        return new_a, new_b

    # Pure delegation below.

    def initial_state(self, rng: random.Random) -> S:
        return self.inner.initial_state(rng)

    def random_state(self, rng: random.Random) -> S:
        return self.inner.random_state(rng)

    def rank_of(self, state: S) -> Optional[int]:
        return self.inner.rank_of(state)

    def summarize(self, state: S):
        return self.inner.summarize(state)

    def describe(self, state: S) -> str:
        return self.inner.describe(state)

    def is_pair_null(self, a: S, b: S) -> bool:
        return self.inner.is_pair_null(a, b)

    def state_count(self) -> int:
        return self.inner.state_count()


@register_schema(ImmobilizedLeaderProtocol)
def _immobilized_schema(protocol: ImmobilizedLeaderProtocol) -> StateSchema:
    """The transform permutes participants, never states: same schema."""
    return schema_for(protocol.inner)
