"""Shared fixtures for the test suite."""

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG, fresh per test."""
    return random.Random(0xC0FFEE)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration tests (deselect with -m 'not slow')"
    )
