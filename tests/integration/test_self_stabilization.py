"""The self-stabilization battery: the paper's headline property.

Every protocol must reach a stably correct ranking from *every*
configuration.  These integration tests drive each protocol from the
full adversarial battery (clean start, cloned states, uniform random
states, and the per-protocol hand-crafted traps) at small population
sizes, and additionally verify stability: once correct, the
configuration stays correct for a long tail of extra interactions.
"""

import math

import pytest

from repro.core.adversary import adversarial_battery
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.experiments.common import measure_convergence
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.direct_collision import DirectCollisionSSR
from repro.protocols.leader import has_unique_leader
from repro.protocols.optimal_silent import OptimalSilentSSR
from repro.protocols.sublinear.protocol import SublinearTimeSSR
from repro.protocols.sync_dictionary import SyncDictionarySSR

PROTOCOLS = {
    "ciw": lambda: SilentNStateSSR(8),
    "optimal-silent": lambda: OptimalSilentSSR(8),
    "direct-collision": lambda: DirectCollisionSSR(6),
    "sublinear-h0": lambda: SublinearTimeSSR(6, h=0),
    "sublinear-h1": lambda: SublinearTimeSSR(6, h=1),
    "sublinear-h2": lambda: SublinearTimeSSR(6, h=2),
    "sublinear-coin": lambda: SublinearTimeSSR(6, h=1, deterministic_names=True),
    "sync-dict": lambda: SyncDictionarySSR(6),
}


def battery_cases():
    for protocol_name, factory in PROTOCOLS.items():
        protocol = factory()
        labels = adversarial_battery(protocol, make_rng(0, "labels", protocol_name))
        for label in labels:
            yield pytest.param(protocol_name, label, id=f"{protocol_name}-{label}")


@pytest.mark.slow
@pytest.mark.parametrize("protocol_name,label", battery_cases())
def test_stabilizes_from_adversarial_configuration(protocol_name, label):
    factory = PROTOCOLS[protocol_name]
    protocol = factory()
    rng = make_rng(1, "battery", protocol_name, label)
    battery = adversarial_battery(protocol, make_rng(0, "labels", protocol_name))
    outcome = measure_convergence(
        protocol,
        battery[label],
        rng=rng,
        max_time=40_000.0,
        confirm_time=30.0 + 6.0 * math.log(protocol.n),
    )
    assert outcome.converged, f"{protocol_name} failed from {label!r}"


@pytest.mark.slow
@pytest.mark.parametrize(
    "protocol_name", ["ciw", "optimal-silent", "sublinear-h0", "direct-collision"]
)
def test_silent_protocols_actually_fall_silent(protocol_name):
    protocol = PROTOCOLS[protocol_name]()
    assert protocol.silent
    rng = make_rng(2, "silence", protocol_name)
    outcome = measure_convergence(
        protocol,
        protocol.random_configuration(rng),
        rng=rng,
        max_time=60_000.0,
    )
    assert outcome.converged
    assert outcome.silent_certified


@pytest.mark.slow
@pytest.mark.parametrize("protocol_name", list(PROTOCOLS))
def test_correctness_is_stable_once_reached(protocol_name):
    """After stabilization, the ranking (and the leader) never changes."""
    protocol = PROTOCOLS[protocol_name]()
    rng = make_rng(3, "stable", protocol_name)
    monitor = protocol.convergence_monitor()
    sim = Simulation(
        protocol, protocol.random_configuration(rng), rng=rng, monitors=[monitor]
    )
    budget = 60_000 * protocol.n
    while not monitor.correct:
        assert sim.interactions < budget
        sim.run(50)
    regressions_at_convergence = monitor.regressions
    ranks = sorted(protocol.rank_of(s) for s in sim.states)
    assert ranks == list(range(1, protocol.n + 1))
    sim.run(3_000 * protocol.n)
    assert monitor.correct
    assert monitor.regressions == regressions_at_convergence
    assert has_unique_leader(protocol, sim.states)


@pytest.mark.slow
def test_sublinear_survives_repeated_fault_injection():
    """Corrupt a stabilized population repeatedly; it re-stabilizes."""
    from repro.core.adversary import corrupted_configuration

    protocol = SublinearTimeSSR(6, h=1)
    rng = make_rng(4, "faults")
    states = protocol.unique_names_configuration(rng)
    for round_index in range(3):
        outcome = measure_convergence(
            protocol, states, rng=rng, max_time=40_000.0
        )
        assert outcome.converged, f"round {round_index}"
        # Re-run to get the stabilized states (measure_convergence does
        # not return them), then corrupt a third of the population.
        monitor = protocol.convergence_monitor()
        sim = Simulation(protocol, states, rng=rng, monitors=[monitor])
        while not monitor.correct:
            sim.run(50)
        states = corrupted_configuration(protocol, sim.states, rng, corruptions=2)
