"""Tests for the declarative state-schema layer.

Domains, field specs, constraints, enumeration, and the registry's
MRO-walk resolution -- the vocabulary every other statics pass builds on.
"""

import pytest

from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.direct_collision import DirectCollisionSSR
from repro.protocols.optimal_silent import OptimalSilentAgent, OptimalSilentSSR, Role
from repro.protocols.parameters import OptimalSilentParameters, ResetParameters
from repro.statics.schema import (
    Anything,
    NotEnumerableError,
    SchemaError,
    Choice,
    Const,
    FieldSpec,
    IntRange,
    NonNegativeInt,
    Predicate,
    has_schema,
    register_schema,
    scalar_schema,
    schema_for,
)


def tiny_params() -> OptimalSilentParameters:
    return OptimalSilentParameters(reset=ResetParameters(r_max=2, d_max=2), e_max=2)


class TestDomains:
    def test_int_range(self):
        domain = IntRange(0, 3)
        assert domain.contains(0) and domain.contains(3)
        assert not domain.contains(-1) and not domain.contains(4)
        assert not domain.contains(True)  # bools are not ranks
        assert not domain.contains("1")
        assert list(domain.values()) == [0, 1, 2, 3]
        assert domain.describe() == "0..3"

    def test_int_range_rejects_empty(self):
        with pytest.raises(SchemaError):
            IntRange(3, 2)

    def test_choice_uses_identity_then_equality(self):
        domain = Choice((Role.SETTLED, Role.UNSETTLED))
        assert domain.contains(Role.SETTLED)
        assert not domain.contains(Role.RESETTING)
        assert list(domain.values()) == [Role.SETTLED, Role.UNSETTLED]

    def test_const(self):
        domain = Const(0)
        assert domain.contains(0) and not domain.contains(1)
        assert list(domain.values()) == [0]

    def test_predicate_not_enumerable(self):
        domain = Predicate(lambda v: isinstance(v, str), "a string")
        assert domain.contains("x") and not domain.contains(3)
        assert not domain.enumerable
        assert domain.describe() == "a string"

    def test_non_negative_and_anything(self):
        assert NonNegativeInt().contains(7)
        assert not NonNegativeInt().contains(-1)
        assert Anything().contains(object())
        assert not Anything().enumerable


class TestFieldSpec:
    def test_violation_message_uses_label(self):
        spec = FieldSpec("rank", IntRange(1, 4), label="settled rank")
        assert spec.violation(9) == "settled rank 9 outside 1..4"

    def test_violation_message_defaults_to_name(self):
        spec = FieldSpec("timer", IntRange(0, 2))
        assert spec.violation(-1) == "timer -1 outside 0..2"


class TestScalarSchema:
    def test_exact_ciw_message(self):
        # The historical hand-written checker's exact message is part of
        # the schema contract (tests and logs depend on it).
        schema = schema_for(SilentNStateSSR(3))
        assert schema.validate(99) == ["rank 99 outside 0..2"]
        assert schema.validate(0) == []
        assert schema.is_valid(2)

    def test_enumeration_and_count(self):
        schema = schema_for(SilentNStateSSR(4))
        states = schema.enumerate_states()
        assert states == [0, 1, 2, 3]
        assert schema.declared_state_count() == 4
        assert len({schema.key(s) for s in states}) == 4


class TestRoleSchemas:
    def test_optimal_silent_roles_and_constraints(self):
        protocol = OptimalSilentSSR(4, tiny_params())
        schema = schema_for(protocol)
        clean = OptimalSilentAgent(role=Role.SETTLED, rank=2, children=1)
        assert schema.validate(clean) == []
        # Field domain violation with the declared label.
        bad_rank = OptimalSilentAgent(role=Role.SETTLED, rank=9, children=0)
        assert any("settled rank 9" in p for p in schema.validate(bad_rank))
        # Constraint violation: an unsettled agent must zero settled fields.
        leaked = OptimalSilentAgent(role=Role.UNSETTLED, rank=3, errorcount=0)
        assert any(
            "unsettled agent leaked settled fields" in p
            for p in schema.validate(leaked)
        )

    def test_unknown_role(self):
        protocol = OptimalSilentSSR(4, tiny_params())
        schema = schema_for(protocol)
        problems = schema.validate(object())
        assert problems and "unknown role" in problems[0]

    def test_enumeration_matches_closed_form(self):
        params = tiny_params()
        for n in (2, 3, 4):
            protocol = OptimalSilentSSR(n, params)
            schema = schema_for(protocol)
            assert schema.declared_state_count() == protocol.state_count()

    def test_keys_are_unique(self):
        protocol = OptimalSilentSSR(3, tiny_params())
        schema = schema_for(protocol)
        states = schema.enumerate_states()
        assert len({schema.key(s) for s in states}) == len(states)


class TestRegistry:
    def test_subclass_resolves_via_mro(self):
        # DirectCollisionSSR registers no schema of its own; it inherits
        # SublinearTimeSSR's through the registry's MRO walk.
        import random

        protocol = DirectCollisionSSR(4)
        assert has_schema(protocol)
        schema = schema_for(protocol)
        assert schema.validate(protocol.initial_state(random.Random(0))) == []

    def test_unregistered_type_raises_keyerror(self):
        class Unregistered:
            pass

        assert not has_schema(Unregistered())
        with pytest.raises(KeyError):
            schema_for(Unregistered())

    def test_register_decorator(self):
        class Toy:
            n = 2

        @register_schema(Toy)
        def _toy_schema(protocol):
            return scalar_schema(
                "Toy",
                FieldSpec("value", IntRange(0, protocol.n - 1)),
                build=lambda value: value,
            )

        assert has_schema(Toy())
        assert schema_for(Toy()).enumerate_states() == [0, 1]


class TestNonEnumerable:
    def test_roster_protocols_are_not_enumerable(self):
        from repro.protocols.sublinear.protocol import SublinearTimeSSR

        schema = schema_for(SublinearTimeSSR(4))
        assert not schema.enumerable
        with pytest.raises(NotEnumerableError):
            schema.enumerate_states()
