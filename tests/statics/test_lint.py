"""Tests for the ``repro lint`` driver: exit codes, reports, audit CSV.

The two acceptance paths: a clean tree lints with exit code 0 and
visible certification lines; the seeded mutants lint nonzero with
witness configurations in the report.
"""

import csv
import os
import subprocess
import sys

import pytest

from repro.statics.findings import Severity
from repro.statics.lint import (
    MUTANT_NAMES,
    all_target_names,
    default_target_names,
    main as lint_main,
    run_lint,
    write_audit_csv,
)


class TestTargetRegistry:
    def test_mutants_excluded_from_default(self):
        defaults = default_target_names()
        for name in MUTANT_NAMES:
            assert name not in defaults
            assert name in all_target_names()

    def test_paper_protocols_in_default(self):
        defaults = default_target_names()
        assert "SilentNStateSSR" in defaults
        assert "OptimalSilentSSR" in defaults


class TestCleanRun:
    def test_certifies_the_paper_protocols(self):
        result = run_lint(["SilentNStateSSR"])
        assert result.ok
        assert result.checked == ["SilentNStateSSR"]
        certified = [
            f
            for f in result.findings
            if f.severity is Severity.INFO and "certified" in f.message
        ]
        rules = {f.rule_id for f in certified}
        # n=2,3,4, each certifying all five rules.
        assert {"closure", "determinism", "silence", "stabilization"} <= rules
        for n in (2, 3, 4):
            assert any(f.message.startswith(f"n={n}:") for f in certified)

    def test_exit_code_zero(self, tmp_path, capsys):
        code = lint_main(
            ["SilentNStateSSR"],
            audit_states=True,
            audit_path=str(tmp_path / "audit.csv"),
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro lint report" in out
        assert "State-count audit" in out


class TestMutantRun:
    def test_broken_mutants_fail_with_witnesses(self):
        result = run_lint(list(MUTANT_NAMES))
        assert not result.ok
        errors = [f for f in result.findings if f.severity is Severity.ERROR]
        assert errors
        rules = {f.rule_id for f in errors}
        assert "closure" in rules  # domain escape caught by the model checker
        assert "state-aliasing" in rules  # shared scratch caught by the sanitizer
        assert "hidden-nondeterminism" in rules or "determinism" in rules
        # At least one error carries a witness configuration.
        assert any(f.witness for f in errors)

    def test_exit_code_nonzero(self, capsys):
        code = lint_main(list(MUTANT_NAMES))
        assert code == 1
        out = capsys.readouterr().out
        assert "error finding(s)" in out
        assert "Witnesses" in out

    def test_unknown_protocol_is_an_error(self):
        result = run_lint(["NoSuchProtocol"])
        assert not result.ok
        assert result.findings[0].rule_id == "unknown-protocol"


class TestAudit:
    def test_audit_rows_match_everywhere(self):
        result = run_lint(
            ["SilentNStateSSR", "OptimalSilentSSR"], audit_states=True
        )
        assert result.ok
        assert len(result.audit_rows) == 6  # two protocols x n=2,3,4
        for row in result.audit_rows:
            assert row["matches"] is True
            assert (
                row["declared_states"]
                == row["protocol_state_count"]
                == row["reference_states"]
            )

    def test_audit_csv_roundtrip(self, tmp_path):
        result = run_lint(["SilentNStateSSR"], audit_states=True)
        path = write_audit_csv(result.audit_rows, str(tmp_path / "audit.csv"))
        assert os.path.exists(path)
        with open(path, encoding="utf8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[0]["protocol"] == "SilentNStateSSR"
        assert rows[0]["matches"] == "True"


@pytest.mark.slow
class TestCliEndToEnd:
    """The real subprocess path: ``python -m repro lint``."""

    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )

    def test_mutant_exits_nonzero(self):
        proc = self._run("BrokenRankingSSR")
        assert proc.returncode == 1
        assert "closure" in proc.stdout
        assert "Witnesses" in proc.stdout

    def test_single_clean_protocol_exits_zero(self):
        proc = self._run("SilentNStateSSR")
        assert proc.returncode == 0
