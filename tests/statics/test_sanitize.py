"""Tests for the transition sanitizer.

Clean protocols sweep clean; the seeded mutants trip exactly the rules
their bugs were planted for (aliasing, hidden nondeterminism, schema
escape), with witness configurations attached.
"""

import random

from repro.core.adversary import adversarial_battery
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentSSR
from repro.protocols.parameters import OptimalSilentParameters, ResetParameters
from repro.protocols.sublinear.protocol import SublinearTimeSSR
from repro.statics.findings import Severity
from repro.statics.mutants import BrokenRankingSSR, NondeterministicRankingSSR
from repro.statics.sanitize import (
    RULE_ALIASING,
    RULE_NONDETERMINISM,
    RULE_SCHEMA_ESCAPE,
    mutable_ids,
    sanitize_protocol,
)
from repro.statics.schema import schema_for


def tiny_optimal(n: int) -> OptimalSilentSSR:
    params = OptimalSilentParameters(reset=ResetParameters(r_max=2, d_max=2), e_max=2)
    return OptimalSilentSSR(n, params)


class TestMutableIds:
    def test_primitives_and_enums_are_skipped(self):
        from repro.protocols.optimal_silent import Role

        assert mutable_ids(3) == {}
        assert mutable_ids("name") == {}
        assert mutable_ids(Role.SETTLED) == {}

    def test_lists_and_nested_structures_are_recorded(self):
        inner = [1, 2]
        outer = {"k": inner}
        ids = mutable_ids(outer)
        assert id(outer) in ids and id(inner) in ids

    def test_tuples_traverse_without_being_recorded(self):
        inner = [1]
        wrapper = (inner,)
        ids = mutable_ids(wrapper)
        assert id(inner) in ids
        assert id(wrapper) not in ids

    def test_dataclass_fields_visited(self):
        from repro.statics.mutants import BrokenAgent

        agent = BrokenAgent(rank=0, scratch=[1])
        ids = mutable_ids(agent)
        assert id(agent.scratch) in ids


class TestCleanProtocols:
    def test_silent_n_state_is_clean(self):
        protocol = SilentNStateSSR(4)
        findings = sanitize_protocol(protocol, rng=random.Random(0))
        assert findings == []

    def test_optimal_silent_battery_is_clean(self):
        protocol = tiny_optimal(4)
        battery = adversarial_battery(protocol, random.Random(0))
        findings = sanitize_protocol(
            protocol, configurations=list(battery.items())
        )
        assert findings == []

    def test_sublinear_is_clean(self):
        protocol = SublinearTimeSSR(4)
        findings = sanitize_protocol(protocol, rng=random.Random(0))
        assert findings == []


class TestMutantsAreFlagged:
    def test_broken_ranking_aliasing_and_escape(self):
        from repro.statics.mutants import BrokenAgent

        protocol = BrokenRankingSSR(3)
        # A top-rank collision forces the missing-mod escape; a generous
        # findings cap keeps the (ubiquitous) aliasing findings from
        # crowding it out.
        forced = [BrokenAgent(rank=2), BrokenAgent(rank=2), BrokenAgent(rank=0)]
        findings = sanitize_protocol(
            protocol,
            configurations=[("top-rank collision", forced)],
            max_findings=64,
        )
        rules = {finding.rule_id for finding in findings}
        assert RULE_ALIASING in rules
        assert RULE_SCHEMA_ESCAPE in rules
        aliasing = [f for f in findings if f.rule_id == RULE_ALIASING]
        assert all(f.severity is Severity.ERROR for f in aliasing)
        # The witness names the shared structure by attribute path.
        assert any("scratch" in f.message for f in aliasing)
        assert any(f.witness for f in aliasing), "aliasing needs a witness"

    def test_nondeterministic_ranking_flagged(self):
        protocol = NondeterministicRankingSSR(3)
        findings = sanitize_protocol(protocol, rng=random.Random(0))
        rules = {finding.rule_id for finding in findings}
        assert RULE_NONDETERMINISM in rules
        assert any(
            "does not replay" in f.message
            for f in findings
            if f.rule_id == RULE_NONDETERMINISM
        )

    def test_max_findings_caps_output(self):
        protocol = BrokenRankingSSR(4)
        findings = sanitize_protocol(
            protocol, rng=random.Random(0), max_findings=2
        )
        assert len(findings) <= 2

    def test_schema_escape_names_the_domain(self):
        from repro.statics.mutants import BrokenAgent

        protocol = BrokenRankingSSR(3)
        schema = schema_for(protocol)
        forced = [BrokenAgent(rank=2), BrokenAgent(rank=2), BrokenAgent(rank=1)]
        findings = sanitize_protocol(
            protocol,
            schema,
            configurations=[("top-rank collision", forced)],
            max_findings=64,
        )
        escapes = [f for f in findings if f.rule_id == RULE_SCHEMA_ESCAPE]
        assert any("outside 0..2" in f.message for f in escapes)
