"""Tests for the quantitative subsystem: exact chains, oracle, synthesis.

The regression anchor is deliberate redundancy: the generic chain solver
is checked against an *independent* reimplementation of the old
``analysis/exact.py`` algorithm (count-vector chain, dense numpy solve)
at n=4 and n=6, against the paper's closed-form worst case, and against
both simulation engines through the oracle's exact confidence bands.
"""

import random
from fractions import Fraction
from math import comb
from pathlib import Path

import pytest

from repro.analysis.exact import (
    colliding_weight,
    expected_absorption_interactions,
    is_absorbing,
    successors,
    worst_case_expected_interactions,
)
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.loose_stabilization import LooselyStabilizingLE
from repro.statics.modelcheck import ModelCheckError, StateSpace
from repro.statics.mutants import SluggishRankingSSR
from repro.statics.prism import export_prism
from repro.statics.quant import (
    QuantError,
    build_chain,
    config_of,
    hitting_distribution,
    hitting_moments,
    transition_distribution,
    worst_case,
)


def old_exact_solver(start):
    """The pre-refactor ``analysis/exact.py`` algorithm, verbatim in
    miniature: dense numpy solve of the count-vector jump chain."""
    import numpy as np

    n = sum(start)
    states = [start]
    seen = {start}
    while states:
        frontier = []
        for state in states:
            for nxt, _ in successors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        states = frontier
    ordered = sorted(seen)
    transient = [s for s in ordered if not is_absorbing(s)]
    index = {s: i for i, s in enumerate(transient)}
    matrix = np.zeros((len(transient), len(transient)))
    constant = np.zeros(len(transient))
    for state, row in index.items():
        weight = colliding_weight(state)
        matrix[row, row] = 1.0
        constant[row] = n * (n - 1) / weight
        for nxt, move_weight in successors(state):
            if nxt in index:
                matrix[row, index[nxt]] -= move_weight / weight
    solution = np.linalg.solve(matrix, constant)
    return float(solution[index[start]])


class TestChainConstruction:
    def test_rows_are_exact_distributions(self):
        chain = build_chain(SilentNStateSSR(4))
        assert chain.size == comb(4 + 4 - 1, 4)
        for row in chain.rows:
            assert sum(probability for _, probability in row) == Fraction(1)

    def test_transition_probabilities_match_pair_counts(self):
        # All four agents at rank 0: every ordered pair collides, so the
        # successor (3 at rank 0, 1 at rank 1) has probability 1.
        space = StateSpace(SilentNStateSSR(4))
        distribution = transition_distribution(space, (0, 0, 0, 0))
        assert distribution == [((0, 0, 0, 1), Fraction(1))]

    def test_self_loop_probability(self):
        # (0, 0, 1, 2): 2 of 12 ordered pairs collide.
        space = StateSpace(SilentNStateSSR(4))
        distribution = dict(transition_distribution(space, (0, 0, 1, 2)))
        assert distribution[(0, 0, 1, 2)] == Fraction(10, 12)
        assert distribution[(0, 1, 1, 2)] == Fraction(2, 12)

    def test_config_of_sorts_and_validates(self):
        space = StateSpace(SilentNStateSSR(3))
        assert config_of(space, [2, 0, 1]) == (0, 1, 2)
        with pytest.raises(QuantError):
            config_of(space, [0, 1])  # wrong population
        with pytest.raises(QuantError):
            config_of(space, [0, 1, 99])  # unknown state

    def test_reachable_coverage_is_closed(self):
        protocol = SilentNStateSSR(4)
        chain = build_chain(
            protocol, starts=[protocol.worst_case_configuration()]
        )
        assert chain.coverage == "reachable"
        assert 0 < chain.size < comb(4 + 4 - 1, 4)
        for row in chain.rows:
            assert sum(probability for _, probability in row) == Fraction(1)

    def test_reachable_cap_raises_typed_error(self):
        protocol = SilentNStateSSR(4)
        with pytest.raises(QuantError, match="refusing to truncate"):
            build_chain(
                protocol,
                starts=[protocol.worst_case_configuration()],
                max_configs=2,
            )

    def test_missing_target_is_ill_posed(self):
        # Loose LE at t_max=1 cannot reach a one-leader configuration
        # from the cold start; the hitting time must refuse, not lie.
        protocol = LooselyStabilizingLE(4, t_max=1)
        rng = random.Random(0)
        start = [protocol.initial_state(rng) for _ in range(4)]
        with pytest.raises(QuantError, match="ill-posed"):
            build_chain(protocol, starts=[start], target="correct")


class TestConfigurationCap:
    """Satellite: the cap raises a typed error, never truncates."""

    def test_configurations_cap_raises_model_check_error(self):
        space = StateSpace(SilentNStateSSR(4))
        with pytest.raises(ModelCheckError, match="refusing to truncate"):
            space.configurations(max_configs=10)

    def test_full_chain_cap_propagates(self):
        with pytest.raises(ModelCheckError):
            build_chain(SilentNStateSSR(4), max_configs=10)


class TestExactValues:
    """Old-vs-new identity: the generic solver reproduces the dedicated
    count-vector solver it replaced (same chain, independent code)."""

    @pytest.mark.parametrize(
        "start", [(4, 0, 0, 0), (2, 0, 1, 1), (2, 1, 1, 0)]
    )
    def test_matches_old_solver_n4(self, start):
        assert expected_absorption_interactions(start) == pytest.approx(
            old_exact_solver(start), rel=1e-12
        )

    def test_matches_old_solver_n6(self):
        start = (6, 0, 0, 0, 0, 0)
        assert expected_absorption_interactions(start) == pytest.approx(
            old_exact_solver(start), rel=1e-12
        )

    @pytest.mark.parametrize("n", [4, 6])
    def test_worst_case_closed_form(self, n):
        # The line witness telescopes to n (n-1)^2 / 2 exactly.
        assert worst_case_expected_interactions(n) == pytest.approx(
            n * (n - 1) ** 2 / 2
        )

    def test_full_space_worst_case(self):
        value, witness, moments = worst_case(SilentNStateSSR(4))
        # The four all-same-rank configurations tie for the global worst
        # at n=4, strictly above the paper's line witness (18.0).
        assert len(set(witness)) == 1
        assert value == pytest.approx(22.0)
        assert moments.solver in ("scipy", "gauss-seidel")

    def test_variance_positive_on_transient_start(self):
        protocol = SilentNStateSSR(4)
        chain = build_chain(protocol)
        moments = hitting_moments(chain)
        assert moments.variance_from((0, 0, 0, 0)) > 0
        # Target configurations have zero time and zero variance.
        target = chain.configs[chain.target_indices[0]]
        assert moments.expected_from(target) == 0.0
        assert moments.variance_from(target) == 0.0


class TestSolvers:
    def test_fallback_agrees_with_auto(self):
        chain = build_chain(SilentNStateSSR(5))
        auto = hitting_moments(chain, solver="auto")
        fallback = hitting_moments(chain, solver="gauss-seidel")
        for a, b in zip(auto.expected, fallback.expected):
            assert a == pytest.approx(b, rel=1e-9)

    def test_scipy_agrees_with_fallback(self):
        pytest.importorskip("scipy")
        chain = build_chain(SilentNStateSSR(5))
        sparse = hitting_moments(chain, solver="scipy")
        fallback = hitting_moments(chain, solver="gauss-seidel")
        assert sparse.solver == "scipy"
        assert fallback.solver == "gauss-seidel"
        for a, b in zip(sparse.expected, fallback.expected):
            assert a == pytest.approx(b, rel=1e-9)
        for a, b in zip(sparse.second_moment, fallback.second_moment):
            assert a == pytest.approx(b, rel=1e-9)

    def test_unknown_solver_rejected(self):
        chain = build_chain(SilentNStateSSR(3))
        with pytest.raises(ValueError):
            hitting_moments(chain, solver="cholesky")


class TestUnreachable:
    """Infinite expected hitting times are detected exactly."""

    def make_chain(self):
        # Loose LE at t_max=1: the cold start's reachable component
        # contains no one-leader configuration, so seeding the chain
        # with the ideal configuration too yields a chain whose target
        # exists but is unreachable from the cold start.
        protocol = LooselyStabilizingLE(4, t_max=1)
        rng = random.Random(0)
        cold = [protocol.initial_state(rng) for _ in range(4)]
        chain = build_chain(
            protocol,
            starts=[cold, protocol.ideal_configuration()],
            target="correct",
        )
        return chain, cold

    def test_raise_mode_names_witnesses(self):
        chain, _ = self.make_chain()
        with pytest.raises(QuantError, match="positive probability"):
            hitting_moments(chain, on_unreachable="raise")

    def test_inf_mode_reports_infinity(self):
        chain, cold = self.make_chain()
        moments = hitting_moments(chain, on_unreachable="inf")
        assert moments.expected_from_states(cold) == float("inf")
        assert moments.infinite  # witnesses retained
        assert moments.variance_from(chain.config_of(cold)) == float("inf")
        # The target itself still reports zero, not infinity.
        target = chain.configs[chain.target_indices[0]]
        assert moments.expected_from(target) == 0.0


class TestHittingDistribution:
    def test_pmf_sums_to_one(self):
        protocol = SilentNStateSSR(4)
        chain = build_chain(protocol)
        start = chain.config_of(protocol.counts_to_configuration((4, 0, 0, 0)))
        distribution = hitting_distribution(chain, start)
        assert sum(distribution.pmf) + distribution.tail == pytest.approx(1.0)
        assert distribution.tail <= 1e-9

    def test_mean_matches_expected_hitting_time(self):
        protocol = SilentNStateSSR(4)
        chain = build_chain(protocol)
        start = chain.config_of(protocol.counts_to_configuration((4, 0, 0, 0)))
        moments = hitting_moments(chain)
        distribution = hitting_distribution(chain, start, tail_tol=1e-12)
        assert distribution.mean_lower_bound() == pytest.approx(
            moments.expected_from(start), abs=1e-6
        )

    def test_two_agents_geometric(self):
        # n=2 from (0, 0): absorption is certain after one interaction.
        chain = build_chain(SilentNStateSSR(2))
        distribution = hitting_distribution(chain, (0, 0))
        assert distribution.pmf[0] == 0.0
        assert distribution.pmf[1] == pytest.approx(1.0)

    def test_start_on_target_is_immediate(self):
        chain = build_chain(SilentNStateSSR(3))
        target = chain.configs[chain.target_indices[0]]
        distribution = hitting_distribution(chain, target)
        assert distribution.pmf == [1.0]
        assert distribution.tail == 0.0


class TestOracle:
    """The sharp cross-validation: engines vs exact bands at n=4."""

    def test_all_engines_within_band(self):
        from repro.statics.oracle import verify_target

        report = verify_target("SilentNStateSSR", n=4, trials=300)
        assert report.ok, [f.message for f in report.findings]
        engines = {estimate.engine for estimate in report.estimates}
        # The vector kernel earns its own Monte-Carlo band (independent
        # scheduling draws); without numpy it falls back to the count
        # engine and still must land inside the band.
        assert engines == {"generic", "count", "vector"}
        for estimate in report.estimates:
            assert estimate.within_band
        # Acceptance: the verify exact value is bit-for-bit the
        # analysis.exact value (they now share one solver).
        assert report.exact_interactions == expected_absorption_interactions(
            (2, 1, 1, 0)
        )

    def test_quantitative_mutant_flagged(self):
        from repro.statics.oracle import RULE_QUANT_SPEC, verify_target

        report = verify_target("SluggishRankingSSR", n=4, trials=50)
        assert not report.ok
        spec_errors = [
            finding
            for finding in report.findings
            if finding.rule_id == RULE_QUANT_SPEC and finding.severity.value == "error"
        ]
        assert spec_errors, "the exact-chain comparison must flag the mutant"
        assert report.reference_interactions == pytest.approx(18.0)
        assert report.exact_interactions > report.reference_interactions

    def test_mutant_passes_qualitative_lint_rules(self):
        # The mutant's whole point: qualitatively indistinguishable.
        from repro.statics.modelcheck import model_check

        outcomes = model_check(SluggishRankingSSR(4))
        assert all(outcome.passed for outcome in outcomes)

    def test_cli_verify_exit_codes(self, tmp_path):
        from repro.experiments.cli import main

        ledger = tmp_path / "ledger.jsonl"
        assert (
            main(
                [
                    "verify",
                    "SilentNStateSSR",
                    "--trials",
                    "100",
                    "--ledger",
                    str(ledger),
                    "-o",
                    str(tmp_path / "verify.md"),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "verify",
                    "SluggishRankingSSR",
                    "--trials",
                    "20",
                    "--no-ledger",
                    "-o",
                    str(tmp_path / "mutant.md"),
                ]
            )
            == 1
        )
        import json

        entries = [
            json.loads(line)
            for line in ledger.read_text().splitlines()
            if line.strip()
        ]
        assert entries and entries[0]["kind"] == "verify"
        assert entries[0]["ok"] is True

    def test_unknown_target_is_error(self):
        from repro.statics.oracle import verify_target

        report = verify_target("NoSuchProtocol")
        assert not report.ok


class TestSynthesis:
    def test_loose_tmax_known_optimal(self):
        from repro.statics.synth import run_synth

        result = run_synth("loose-tmax")
        assert result.ok, [f.message for f in result.findings]
        assert result.best is not None
        # t_max=1 is provably infeasible; 2 is the smallest that works.
        assert result.best.param == 2
        infeasible = [p.param for p in result.points if not p.feasible]
        assert infeasible == [1]

    def test_holding_time_monotone(self):
        from repro.statics.synth import run_synth

        result = run_synth("loose-holding")
        assert result.ok
        objectives = [point.objective for point in result.points]
        assert objectives == sorted(objectives)
        assert result.best is not None and result.best.param == 4

    def test_grid_override_skips_known_optimal_check(self):
        from repro.statics.synth import run_synth

        result = run_synth("loose-tmax", grid=[2, 3])
        assert result.ok
        assert result.best is not None and result.best.param == 2

    def test_cli_synth_end_to_end(self, tmp_path):
        from repro.experiments.cli import main

        assert (
            main(
                [
                    "synth",
                    "loose-tmax",
                    "loose-holding",
                    "--no-ledger",
                    "-o",
                    str(tmp_path / "synth.md"),
                ]
            )
            == 0
        )
        text = (tmp_path / "synth.md").read_text()
        assert "t_max" in text and "**<- optimal**" in text

    def test_unknown_spec_rejected(self):
        from repro.statics.synth import run_synth

        with pytest.raises(KeyError):
            run_synth("no-such-spec")


class TestPrismExport:
    def test_golden_file(self):
        chain = build_chain(SilentNStateSSR(3))
        golden = Path(__file__).parent / "data" / "ciw_n3.pm"
        assert export_prism(chain) == golden.read_text()

    def test_probabilities_are_exact_fractions(self):
        chain = build_chain(SilentNStateSSR(3))
        text = export_prism(chain)
        assert "2/3 : (c'=1)" in text
        # Every transition row carries exact fractions, never floats.
        for line in text.splitlines():
            if "->" in line:
                assert "0." not in line

    def test_custom_start(self):
        chain = build_chain(SilentNStateSSR(3))
        text = export_prism(chain, start=(0, 1, 2))
        assert "init 4;" in text

    def test_unknown_start_rejected(self):
        chain = build_chain(SilentNStateSSR(3))
        with pytest.raises(QuantError):
            export_prism(chain, start=(9, 9, 9))
