"""Every exported protocol has a registered schema; the adversary obeys it.

Two guarantees:

* **coverage** -- every concrete protocol class exported from
  :mod:`repro.protocols` (plus the lint-only wrappers) resolves a
  schema, so ``invariant_for`` and ``repro lint`` can never silently
  skip one;
* **adversary containment** -- every configuration the adversarial
  battery produces validates against the declared schema, across seeds
  (property-style): the adversary covers the state space, it does not
  exceed it.
"""

import inspect
import random

import pytest

import repro.protocols as protocols_pkg
from repro.core.adversary import adversarial_battery
from repro.core.invariants import invariant_for
from repro.core.protocol import PopulationProtocol
from repro.protocols import (
    DirectCollisionSSR,
    ImmobilizedLeaderProtocol,
    LooselyStabilizingLE,
    OptimalSilentParameters,
    OptimalSilentSSR,
    ResetParameters,
    ResetTimingProtocol,
    SilentNStateSSR,
    SublinearTimeSSR,
    SyncDictionarySSR,
)
from repro.protocols.naming import NamingOnlyProtocol
from repro.statics.schema import has_schema, schema_for


def tiny_optimal() -> OptimalSilentSSR:
    params = OptimalSilentParameters(reset=ResetParameters(r_max=2, d_max=2), e_max=2)
    return OptimalSilentSSR(4, params)


#: One instantiation per concrete protocol class.  The coverage test
#: below fails if a newly exported protocol class is missing from here.
FACTORIES = {
    "SilentNStateSSR": lambda: SilentNStateSSR(4),
    "DirectCollisionSSR": lambda: DirectCollisionSSR(4),
    "LooselyStabilizingLE": lambda: LooselyStabilizingLE(4, t_max=3),
    "OptimalSilentSSR": tiny_optimal,
    "SublinearTimeSSR": lambda: SublinearTimeSSR(4),
    "SyncDictionarySSR": lambda: SyncDictionarySSR(4),
    "ResetTimingProtocol": lambda: ResetTimingProtocol(
        4, ResetParameters(r_max=3, d_max=4)
    ),
    "ImmobilizedLeaderProtocol": lambda: ImmobilizedLeaderProtocol(tiny_optimal()),
    "NamingOnlyProtocol": lambda: NamingOnlyProtocol(SilentNStateSSR(4)),
}


def exported_protocol_classes():
    """Concrete PopulationProtocol subclasses in repro.protocols.__all__."""
    classes = []
    for name in protocols_pkg.__all__:
        obj = getattr(protocols_pkg, name)
        if (
            inspect.isclass(obj)
            and issubclass(obj, PopulationProtocol)
            and not inspect.isabstract(obj)
        ):
            classes.append((name, obj))
    return classes


class TestCoverage:
    def test_exports_include_protocols(self):
        names = [name for name, _ in exported_protocol_classes()]
        assert "SilentNStateSSR" in names and "OptimalSilentSSR" in names

    @pytest.mark.parametrize("name,cls", exported_protocol_classes())
    def test_every_exported_protocol_has_a_schema(self, name, cls):
        assert name in FACTORIES, (
            f"{name} is exported from repro.protocols but has no factory in "
            "tests/statics/test_schema_coverage.py -- add one (and register "
            "a schema in its module)"
        )
        protocol = FACTORIES[name]()
        assert has_schema(protocol), f"{name} has no registered state schema"
        # invariant_for must resolve through the same registry.
        checker = invariant_for(protocol)
        state = protocol.initial_state(random.Random(0))
        assert checker(protocol, state) == []

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_wrappers_and_extras_resolve(self, name):
        protocol = FACTORIES[name]()
        assert has_schema(protocol)
        assert schema_for(protocol).validate(
            protocol.initial_state(random.Random(1))
        ) == []


class TestAdversaryRespectsSchemas:
    """Property-style: batteries validate clean across protocols x seeds."""

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 7, 0xBEEF])
    def test_battery_validates(self, name, seed):
        protocol = FACTORIES[name]()
        schema = schema_for(protocol)
        battery = adversarial_battery(protocol, random.Random(seed))
        assert battery, "battery should produce at least one configuration"
        for label, states in battery.items():
            assert len(states) == protocol.n
            for index, state in enumerate(states):
                problems = schema.validate(state)
                assert not problems, (
                    f"{name} battery '{label}' (seed {seed}) agent {index}: "
                    f"{problems}"
                )
