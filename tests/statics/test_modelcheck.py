"""Tests for the small-n exhaustive model checker.

The positive direction: the paper's protocols are certified at n = 2..4
(the acceptance criterion for ``repro lint``).  The negative direction:
the seeded mutants are caught with witnesses, and graph rules refuse to
run over a broken pair table.
"""

import pytest

from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.loose_stabilization import LooselyStabilizingLE
from repro.protocols.optimal_silent import OptimalSilentSSR
from repro.protocols.parameters import OptimalSilentParameters, ResetParameters
from repro.protocols.sublinear.protocol import SublinearTimeSSR
from repro.statics.modelcheck import (
    ALL_RULES,
    GRAPH_RULES,
    RULE_CLOSURE,
    RULE_DETERMINISM,
    RULE_SILENCE,
    RULE_STABILIZATION,
    ModelCheckError,
    StateSpace,
    model_check,
)
from repro.statics.mutants import BrokenRankingSSR, NondeterministicRankingSSR


def tiny_optimal(n: int) -> OptimalSilentSSR:
    params = OptimalSilentParameters(reset=ResetParameters(r_max=2, d_max=2), e_max=2)
    return OptimalSilentSSR(n, params)


def by_rule(outcomes):
    return {outcome.rule_id: outcome for outcome in outcomes}


class TestStateSpace:
    def test_enumeration_matches_state_count(self):
        space = StateSpace(SilentNStateSSR(3))
        assert len(space.states) == 3
        assert space.pair_table_complete
        assert len(space.pairs) == 9

    def test_configurations_are_multisets(self):
        space = StateSpace(SilentNStateSSR(2))
        configs = space.configurations()
        # multisets of size 2 over 2 states: (0,0), (0,1), (1,1)
        assert configs == [(0, 0), (0, 1), (1, 1)]

    def test_ordered_pairs_need_multiplicity(self):
        space = StateSpace(SilentNStateSSR(2))
        # Two agents in the same state: only that self-pair is schedulable.
        assert space.ordered_pairs((0, 0)) == {(0, 0)}
        assert space.ordered_pairs((0, 1)) == {(0, 1), (1, 0)}

    def test_non_enumerable_schema_refused(self):
        with pytest.raises(ModelCheckError):
            StateSpace(SublinearTimeSSR(3))

    def test_state_cap_enforced(self):
        with pytest.raises(ModelCheckError):
            StateSpace(SilentNStateSSR(4), max_states=3)


class TestCertification:
    """The acceptance criterion: both paper protocols certify at n=2..4."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_silent_n_state_fully_certified(self, n):
        outcomes = by_rule(model_check(SilentNStateSSR(n)))
        assert set(outcomes) == set(ALL_RULES)
        failed = [o.rule_id for o in outcomes.values() if not o.passed]
        assert not failed, failed
        assert "probability-1 stabilization" in outcomes[RULE_STABILIZATION].detail

    @pytest.mark.parametrize("n", [2, 3])
    def test_optimal_silent_fully_certified(self, n):
        outcomes = by_rule(model_check(tiny_optimal(n)))
        assert set(outcomes) == set(ALL_RULES)
        failed = [o.rule_id for o in outcomes.values() if not o.passed]
        assert not failed, failed

    def test_loose_stabilization_pair_rules(self):
        # Not silent: graph rules are not selected by default.
        outcomes = by_rule(model_check(LooselyStabilizingLE(3, t_max=3)))
        assert RULE_SILENCE not in outcomes
        assert outcomes[RULE_CLOSURE].passed
        assert outcomes[RULE_DETERMINISM].passed


class TestMutantsAreCaught:
    def test_broken_ranking_fails_closure_with_witness(self):
        outcomes = by_rule(model_check(BrokenRankingSSR(3)))
        closure = outcomes[RULE_CLOSURE]
        assert not closure.passed
        assert closure.witnesses, "closure failure must carry a witness pair"
        assert any("outside 0..2" in w for w in closure.witnesses)

    def test_broken_ranking_graph_rules_skipped(self):
        outcomes = by_rule(model_check(BrokenRankingSSR(3)))
        for rule_id in GRAPH_RULES:
            assert not outcomes[rule_id].passed
            assert "pair table incomplete" in outcomes[rule_id].detail

    def test_nondeterministic_ranking_fails_determinism(self):
        outcomes = by_rule(model_check(NondeterministicRankingSSR(3)))
        determinism = outcomes[RULE_DETERMINISM]
        assert not determinism.passed
        assert determinism.witnesses
        assert any("differs on replay" in w for w in determinism.witnesses)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            model_check(SilentNStateSSR(2), rules=["no-such-rule"])
