"""Tests for the markdown/CSV renderers."""

from repro.experiments.report import _format_cell, render_csv, render_table


class TestFormatCell:
    def test_floats(self):
        assert _format_cell(1.5) == "1.5"
        assert _format_cell(0.001234) == "0.00123"
        assert _format_cell(123456.0) == "1.23e+05"
        assert _format_cell(float("nan")) == "nan"
        assert _format_cell(0.0) == "0"
        assert _format_cell(2.0) == "2"

    def test_non_floats_pass_through(self):
        assert _format_cell("abc") == "abc"
        assert _format_cell(7) == "7"


class TestRenderTable:
    def test_missing_cells_blank(self):
        table = render_table(["a", "b"], [{"a": 1}])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[2] == "| 1 |  |"

    def test_divider_width_matches(self):
        table = render_table(["x", "y", "z"], [])
        assert table.splitlines()[1].count("---") == 3


class TestRenderCsv:
    def test_round_trips_values(self):
        csv_text = render_csv(["a", "b"], [{"a": 1, "b": "two"}, {"a": 3, "b": 4}])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,two"
        assert lines[2] == "3,4"

    def test_extra_keys_ignored(self):
        csv_text = render_csv(["a"], [{"a": 1, "zzz": 9}])
        assert "zzz" not in csv_text
