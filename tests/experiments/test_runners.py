"""Tests for the experiment runners and the CLI.

Heavy measurement sweeps run in the benchmarks; here each runner is
exercised in quick mode (marked slow where that still takes seconds)
plus unit tests of their pure helpers.
"""

import pytest

from repro.core.rng import make_rng
from repro.experiments.cli import main
from repro.experiments.figure1 import (
    is_parent_closed,
    open_slots,
    ranking_phase_configuration,
    render_tree,
    settled_ranks,
)
from repro.experiments.figure2 import run as run_figure2
from repro.experiments.hsweep import collision_start
from repro.experiments.registry import all_experiments, get_experiment
from repro.experiments.theorem21 import (
    UndersizedRuleCiw,
    control_stays_stable,
    time_to_leader_in_subpopulation,
    time_to_second_leader,
)
from repro.protocols.optimal_silent import OptimalSilentSSR, Role
from repro.protocols.sublinear.protocol import SublinearTimeSSR


class TestRegistry:
    def test_all_ids_resolve(self):
        for experiment_id in all_experiments():
            assert callable(get_experiment(experiment_id))

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("nope")

    def test_expected_ids_present(self):
        assert {
            "table1",
            "hsweep",
            "figure1",
            "figure2",
            "obs22",
            "thm21",
            "epidemics",
            "reset",
            "faults",
            "ablation",
            "whp",
            "loose",
        } <= set(all_experiments())


class TestFigure1Helpers:
    def test_ranking_phase_configuration(self):
        protocol = OptimalSilentSSR(12)
        states = ranking_phase_configuration(protocol)
        assert settled_ranks(states) == {1}
        assert sum(1 for s in states if s.role is Role.UNSETTLED) == 11

    def test_is_parent_closed(self):
        assert is_parent_closed({1, 2, 3})
        assert is_parent_closed({1, 3, 7})
        assert not is_parent_closed({1, 4})  # 4's parent 2 missing
        assert not is_parent_closed({2})  # root missing

    def test_open_slots_of_snapshot(self):
        protocol = OptimalSilentSSR(6)
        states = ranking_phase_configuration(protocol)
        assert open_slots(protocol, states) == {2, 3}

    def test_render_tree_marks_settled(self):
        text = render_tree(6, settled={1, 2})
        assert "[1]" in text and "[2]" in text and "(3)" in text


class TestFigure2:
    def test_full_figure_reproduces(self):
        report = run_figure2()
        assert report.all_passed
        assert len(report.rows) == 8  # 4 agents x 2 panels


class TestTheorem21Components:
    def test_undersized_rule_wraps_mod_modulus(self, rng):
        protocol = UndersizedRuleCiw(modulus=4, n=6)
        assert protocol.transition(3, 3, rng) == (3, 0)
        assert protocol.state_count() == 4

    def test_undersized_rule_validation(self):
        with pytest.raises(ValueError):
            UndersizedRuleCiw(modulus=8, n=4)

    def test_second_leader_appears(self):
        assert time_to_second_leader(6, 9, seed=1, trial=0) > 0

    def test_subpopulation_manufactures_leader(self):
        assert time_to_leader_in_subpopulation(6, 9, seed=1, trial=0) > 0

    def test_control_is_stable(self):
        assert control_stays_stable(8, seed=1, horizon_time=100.0)


class TestHsweepHelpers:
    def test_collision_start_has_exactly_one_duplicate(self):
        protocol = SublinearTimeSSR(8, h=1)
        states = collision_start(protocol, make_rng(1, "cs"))
        names = [s.name for s in states]
        assert len(set(names)) == 7
        assert names[0] == names[1]


@pytest.mark.slow
class TestRunnersQuickMode:
    @pytest.mark.parametrize(
        "experiment_id",
        ["obs22", "thm21", "epidemics", "reset", "faults", "ablation", "whp", "loose"],
    )
    def test_quick_runs_pass_checks(self, experiment_id):
        report = get_experiment(experiment_id)(seed=99, quick=True)
        failed = [name for name, c in report.checks.items() if not c.passed]
        assert not failed, failed

    def test_figure1_quick(self):
        report = get_experiment("figure1")(seed=99, quick=True)
        assert report.all_passed


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure2" in out

    def test_run_figure2(self, capsys):
        assert main(["run", "figure2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["run", "figure2", "--quick", "-o", str(target)]) == 0
        assert "Figure 2" in target.read_text()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "definitely-not-real"])
