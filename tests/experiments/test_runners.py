"""Tests for the experiment runners and the CLI.

Heavy measurement sweeps run in the benchmarks; here each runner is
exercised in quick mode (marked slow where that still takes seconds)
plus unit tests of their pure helpers.
"""

import pytest

from repro.core.rng import make_rng
from repro.experiments.cli import main
from repro.experiments.figure1 import (
    is_parent_closed,
    open_slots,
    ranking_phase_configuration,
    render_tree,
    settled_ranks,
)
from repro.experiments.figure2 import run as run_figure2
from repro.experiments.hsweep import collision_start
from repro.experiments.registry import all_experiments, get_experiment
from repro.experiments.theorem21 import (
    UndersizedRuleCiw,
    control_stays_stable,
    time_to_leader_in_subpopulation,
    time_to_second_leader,
)
from repro.protocols.optimal_silent import OptimalSilentSSR, Role
from repro.protocols.sublinear.protocol import SublinearTimeSSR


class TestRegistry:
    def test_all_ids_resolve(self):
        for experiment_id in all_experiments():
            assert callable(get_experiment(experiment_id))

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("nope")

    def test_expected_ids_present(self):
        assert {
            "table1",
            "hsweep",
            "figure1",
            "figure2",
            "obs22",
            "thm21",
            "epidemics",
            "reset",
            "faults",
            "ablation",
            "whp",
            "loose",
        } <= set(all_experiments())


class TestFigure1Helpers:
    def test_ranking_phase_configuration(self):
        protocol = OptimalSilentSSR(12)
        states = ranking_phase_configuration(protocol)
        assert settled_ranks(states) == {1}
        assert sum(1 for s in states if s.role is Role.UNSETTLED) == 11

    def test_is_parent_closed(self):
        assert is_parent_closed({1, 2, 3})
        assert is_parent_closed({1, 3, 7})
        assert not is_parent_closed({1, 4})  # 4's parent 2 missing
        assert not is_parent_closed({2})  # root missing

    def test_open_slots_of_snapshot(self):
        protocol = OptimalSilentSSR(6)
        states = ranking_phase_configuration(protocol)
        assert open_slots(protocol, states) == {2, 3}

    def test_render_tree_marks_settled(self):
        text = render_tree(6, settled={1, 2})
        assert "[1]" in text and "[2]" in text and "(3)" in text


class TestFigure2:
    def test_full_figure_reproduces(self):
        report = run_figure2()
        assert report.all_passed
        assert len(report.rows) == 8  # 4 agents x 2 panels


class TestTheorem21Components:
    def test_undersized_rule_wraps_mod_modulus(self, rng):
        protocol = UndersizedRuleCiw(modulus=4, n=6)
        assert protocol.transition(3, 3, rng) == (3, 0)
        assert protocol.state_count() == 4

    def test_undersized_rule_validation(self):
        with pytest.raises(ValueError):
            UndersizedRuleCiw(modulus=8, n=4)

    def test_second_leader_appears(self):
        assert time_to_second_leader(6, 9, seed=1, trial=0) > 0

    def test_subpopulation_manufactures_leader(self):
        assert time_to_leader_in_subpopulation(6, 9, seed=1, trial=0) > 0

    def test_control_is_stable(self):
        assert control_stays_stable(8, seed=1, horizon_time=100.0)


class TestHsweepHelpers:
    def test_collision_start_has_exactly_one_duplicate(self):
        protocol = SublinearTimeSSR(8, h=1)
        states = collision_start(protocol, make_rng(1, "cs"))
        names = [s.name for s in states]
        assert len(set(names)) == 7
        assert names[0] == names[1]


@pytest.mark.slow
class TestRunnersQuickMode:
    @pytest.mark.parametrize(
        "experiment_id",
        ["obs22", "thm21", "epidemics", "reset", "faults", "ablation", "whp", "loose"],
    )
    def test_quick_runs_pass_checks(self, experiment_id):
        report = get_experiment(experiment_id)(seed=99, quick=True)
        failed = [name for name, c in report.checks.items() if not c.passed]
        assert not failed, failed

    def test_figure1_quick(self):
        report = get_experiment("figure1")(seed=99, quick=True)
        assert report.all_passed


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure2" in out

    def test_run_figure2(self, capsys):
        assert main(["run", "figure2", "--quick", "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert (
            main(["run", "figure2", "--quick", "--no-ledger", "-o", str(target)]) == 0
        )
        assert "Figure 2" in target.read_text()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "definitely-not-real", "--no-ledger"])

    def test_run_appends_ledger_entry(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert main(["run", "figure2", "--quick", "--ledger", str(ledger)]) == 0
        from repro.obs import read_ledger

        entries = read_ledger(str(ledger))
        assert len(entries) == 1
        assert entries[0]["kind"] == "run"
        assert entries[0]["experiment"] == "figure2"
        assert entries[0]["all_passed"] is True
        assert entries[0]["wall_seconds"] > 0


class TestCliBench:
    def _bench_dir(self, tmp_path, scale="1"):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir(exist_ok=True)
        (bench_dir / "bench_toy.py").write_text(
            "def bench_suite():\n"
            "    from repro.obs.bench import BenchSuite\n"
            "    def cell(seed, repeat):\n"
            f"        return {scale} * (1.0 + 0.01 * repeat)\n"
            "    return BenchSuite('toy').cell('loop', cell, repeats=3)\n"
        )
        return str(bench_dir)

    def _argv(self, tmp_path, bench_dir, *extra):
        return [
            "bench",
            "--suite",
            "toy",
            "--bench-dir",
            bench_dir,
            "--baseline-dir",
            str(tmp_path / "baselines"),
            "--ledger",
            str(tmp_path / "ledger.jsonl"),
            *extra,
        ]

    def test_list_suites(self, tmp_path, capsys):
        bench_dir = self._bench_dir(tmp_path)
        assert main(["bench", "--list", "--bench-dir", bench_dir, "--no-ledger"]) == 0
        assert "toy" in capsys.readouterr().out

    def test_unknown_suite_exits_2(self, tmp_path, capsys):
        bench_dir = self._bench_dir(tmp_path)
        argv = self._argv(tmp_path, bench_dir)
        argv[argv.index("toy")] = "nope"
        assert main(argv) == 2

    def test_same_speed_rerun_not_flagged(self, tmp_path, capsys):
        """Acceptance: two runs at the same SHA show zero regressions."""
        bench_dir = self._bench_dir(tmp_path)
        assert main(self._argv(tmp_path, bench_dir, "--update-baseline")) == 0
        assert main(self._argv(tmp_path, bench_dir, "--compare-baseline")) == 0
        out = capsys.readouterr().out
        assert "0 regression(s) flagged" in out

    def test_injected_slowdown_flagged_nonzero_exit(self, tmp_path, capsys):
        """Acceptance: a 10x slowdown is flagged and exits nonzero."""
        fast = self._bench_dir(tmp_path)
        assert main(self._argv(tmp_path, fast, "--update-baseline")) == 0
        slow = self._bench_dir(tmp_path, scale="10")
        assert main(self._argv(tmp_path, slow, "--compare-baseline")) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        bench_dir = self._bench_dir(tmp_path)
        assert main(self._argv(tmp_path, bench_dir, "--compare-baseline")) == 2

    def test_bench_appends_ledger_entry(self, tmp_path, capsys):
        bench_dir = self._bench_dir(tmp_path)
        assert main(self._argv(tmp_path, bench_dir)) == 0
        from repro.obs import read_ledger

        entries = read_ledger(str(tmp_path / "ledger.jsonl"))
        assert len(entries) == 1
        assert entries[0]["kind"] == "bench"
        assert entries[0]["suite"] == "toy"
        assert "loop" in entries[0]["cells"]

    def test_json_output(self, tmp_path, capsys):
        bench_dir = self._bench_dir(tmp_path)
        target = tmp_path / "bench.json"
        assert main(self._argv(tmp_path, bench_dir, "--json", str(target))) == 0
        import json

        documents = json.loads(target.read_text())
        assert documents[0]["result"]["suite"] == "toy"


class TestCliReport:
    def test_report_renders_ledger(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert main(["run", "figure2", "--quick", "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["report", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "Run ledger report" in out
        assert "figure2" in out

    def test_report_writes_output_file(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert main(["run", "figure2", "--quick", "--ledger", str(ledger)]) == 0
        target = tmp_path / "report.md"
        assert main(["report", "--ledger", str(ledger), "-o", str(target)]) == 0
        assert "figure2" in target.read_text()

    def test_empty_ledger_report(self, tmp_path, capsys):
        assert main(["report", "--ledger", str(tmp_path / "absent.jsonl")]) == 0
        assert "no ledger entries" in capsys.readouterr().out.lower()
