"""Tests for structured result persistence (--csv artifacts)."""

import json

from repro.experiments.cli import main
from repro.experiments.common import ExperimentReport
from repro.experiments.results import build_manifest, checks_rows, write_artifacts


def make_report() -> ExperimentReport:
    report = ExperimentReport("demo", "Demo", columns=["n", "time"])
    report.add_row(n=8, time=1.25)
    report.add_row(n=16, time=2.5)
    report.add_check("shape", passed=True, measured=1.0, expected="~1")
    report.add_check("bound", passed=False, measured=9, expected="< 5")
    return report


class TestChecksRows:
    def test_flattening(self):
        rows = checks_rows(make_report())
        assert rows[0] == {
            "check": "shape",
            "passed": True,
            "measured": "1.0",
            "expected": "~1",
        }
        assert rows[1]["passed"] is False


class TestManifest:
    def test_fields(self):
        manifest = build_manifest(
            make_report(), seed=7, quick=True, elapsed_seconds=1.234
        )
        assert manifest["experiment_id"] == "demo"
        assert manifest["seed"] == 7
        assert manifest["quick"] is True
        assert manifest["rows"] == 2
        assert manifest["checks_passed"] == 1
        assert manifest["checks_failed"] == 1
        assert manifest["all_passed"] is False
        assert "repro_version" in manifest and "python_version" in manifest


class TestWriteArtifacts:
    def test_writes_three_files(self, tmp_path):
        created = write_artifacts(
            make_report(), tmp_path, seed=1, quick=False, elapsed_seconds=0.5
        )
        names = sorted(p.name for p in created)
        assert names == ["demo.checks.csv", "demo.csv", "demo.manifest.json"]
        rows_csv = (tmp_path / "demo.csv").read_text()
        assert rows_csv.splitlines()[0] == "n,time"
        assert "8,1.25" in rows_csv
        manifest = json.loads((tmp_path / "demo.manifest.json").read_text())
        assert manifest["experiment_id"] == "demo"

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_artifacts(
            make_report(), target, seed=1, quick=True, elapsed_seconds=0.1
        )
        assert (target / "demo.csv").exists()


class TestCliCsvFlag:
    def test_run_with_csv(self, tmp_path, capsys):
        assert (
            main(["run", "figure2", "--quick", "--no-ledger", "--csv", str(tmp_path)])
            == 0
        )
        assert (tmp_path / "figure2.csv").exists()
        assert (tmp_path / "figure2.manifest.json").exists()
        manifest = json.loads((tmp_path / "figure2.manifest.json").read_text())
        assert manifest["all_passed"] is True
