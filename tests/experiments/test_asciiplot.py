"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.asciiplot import AsciiChart, scaling_chart


class TestValidation:
    def test_marker_must_be_one_char(self):
        chart = AsciiChart()
        with pytest.raises(ValueError):
            chart.add_series("x", [(1, 1)], marker="ab")

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart().add_series("x", [], marker="*")

    def test_loglog_rejects_nonpositive(self):
        chart = AsciiChart(loglog=True)
        with pytest.raises(ValueError):
            chart.add_series("x", [(0, 1)], marker="*")

    def test_render_without_series_rejected(self):
        with pytest.raises(ValueError):
            AsciiChart().render()


class TestRendering:
    def test_dimensions(self):
        chart = AsciiChart(width=30, height=8, title="T")
        chart.add_series("a", [(0, 0), (1, 1)], marker="*")
        lines = chart.render().splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 8 + 3  # title + grid + axis + ticks + legend
        grid_line = lines[1]
        assert len(grid_line) == 8 + 2 + 30  # label gutter + "|" + width

    def test_markers_present_and_positioned(self):
        chart = AsciiChart(width=21, height=5)
        chart.add_series("up", [(0, 0), (10, 10)], marker="*")
        rendered = chart.render()
        lines = rendered.splitlines()
        # Max point in the top row, min point in the bottom grid row.
        assert "*" in lines[0]
        assert "*" in lines[4]

    def test_overlap_marker(self):
        chart = AsciiChart(width=11, height=3)
        chart.add_series("a", [(5, 5)], marker="o")
        chart.add_series("b", [(5, 5)], marker="x")
        assert "#" in chart.render()

    def test_legend_and_axes_mode(self):
        chart = AsciiChart(loglog=True)
        chart.add_series("quad", [(2, 4), (4, 16)], marker="*")
        rendered = chart.render()
        assert "[log-log]" in rendered
        assert "* quad" in rendered

    def test_degenerate_single_point(self):
        chart = AsciiChart()
        chart.add_series("dot", [(3, 3)], marker="*")
        assert "*" in chart.render()  # no zero-division


class TestScalingChart:
    def test_round_robin_markers(self):
        rendered = scaling_chart(
            "demo",
            [
                ("s1", [(1, 1), (2, 2)]),
                ("s2", [(1, 2), (2, 4)]),
            ],
        )
        assert "* s1" in rendered and "o s2" in rendered
        assert rendered.startswith("demo")
