"""Tests for the experiment measurement machinery."""

import pytest

from repro.core.rng import make_rng
from repro.experiments.common import (
    ConvergenceOutcome,
    ExperimentReport,
    convergence_times,
    measure_convergence,
    repeat_convergence,
    summarize_outcomes,
)
from repro.protocols.cai_izumi_wada import SilentNStateSSR


class TestMeasureConvergence:
    def test_silent_protocol_certified_by_silence(self):
        protocol = SilentNStateSSR(6)
        rng = make_rng(1, "mc")
        outcome = measure_convergence(
            protocol, protocol.worst_case_configuration(), rng=rng, max_time=10_000
        )
        assert outcome.converged
        assert outcome.silent_certified
        assert outcome.convergence_time > 0

    def test_already_correct_start(self):
        protocol = SilentNStateSSR(5)
        rng = make_rng(2, "mc")
        outcome = measure_convergence(
            protocol, [0, 1, 2, 3, 4], rng=rng, max_time=100
        )
        assert outcome.converged
        assert outcome.convergence_time == 0.0

    def test_budget_exhaustion_reports_failure(self):
        protocol = SilentNStateSSR(8)
        rng = make_rng(3, "mc")
        outcome = measure_convergence(
            protocol, protocol.worst_case_configuration(), rng=rng, max_time=0.5
        )
        assert not outcome.converged
        assert outcome.convergence_time != outcome.convergence_time  # NaN

    def test_engine_count_certifies_by_silence(self):
        protocol = SilentNStateSSR(6)
        rng = make_rng(5, "mc")
        outcome = measure_convergence(
            protocol,
            protocol.worst_case_configuration(),
            rng=rng,
            max_time=10_000,
            engine="count",
        )
        assert outcome.converged
        assert outcome.silent_certified
        assert outcome.convergence_time > 0

    def test_engine_count_already_correct_start(self):
        protocol = SilentNStateSSR(5)
        rng = make_rng(6, "mc")
        outcome = measure_convergence(
            protocol, [0, 1, 2, 3, 4], rng=rng, max_time=100, engine="count"
        )
        assert outcome.converged
        assert outcome.convergence_time == 0.0
        assert outcome.interactions == 0

    def test_engine_count_budget_exhaustion(self):
        protocol = SilentNStateSSR(8)
        rng = make_rng(7, "mc")
        outcome = measure_convergence(
            protocol,
            protocol.worst_case_configuration(),
            rng=rng,
            max_time=0.5,
            engine="count",
        )
        assert not outcome.converged
        assert outcome.convergence_time != outcome.convergence_time  # NaN

    def test_engine_auto_falls_back_for_lossy_schemas(self):
        # SublinearTimeSSR's history trees are out-of-key, so auto must
        # route to the generic engine rather than raising.
        from repro.protocols.sublinear.protocol import SublinearTimeSSR

        protocol = SublinearTimeSSR(4, h=0)
        rng = make_rng(8, "mc")
        outcome = measure_convergence(
            protocol,
            protocol.random_configuration(rng),
            rng=rng,
            max_time=40_000.0,
        )
        assert outcome.converged

    def test_engine_matches_distribution_across_engines(self):
        # Same protocol and label family, distinct streams: the two
        # engines' mean stabilization times agree within sampling noise.
        import statistics

        def mean_time(engine, label):
            times = []
            for trial in range(40):
                protocol = SilentNStateSSR(6)
                rng = make_rng(9, label, trial)
                outcome = measure_convergence(
                    protocol,
                    protocol.worst_case_configuration(),
                    rng=rng,
                    max_time=10_000,
                    engine=engine,
                )
                assert outcome.converged
                times.append(outcome.convergence_time)
            return statistics.mean(times)

        generic = mean_time("generic", "eng-gen")
        count = mean_time("count", "eng-count")
        assert count == pytest.approx(generic, rel=0.25)

    def test_unknown_engine_rejected(self):
        protocol = SilentNStateSSR(4)
        with pytest.raises(ValueError):
            measure_convergence(
                protocol,
                [0, 1, 2, 3],
                rng=make_rng(10, "mc"),
                max_time=1.0,
                engine="quantum",
            )

    def test_confirmation_window_path(self):
        # Disable silence probing to exercise the streak-confirm branch.
        protocol = SilentNStateSSR(5)
        rng = make_rng(4, "mc")
        outcome = measure_convergence(
            protocol,
            [0, 0, 1, 2, 3],
            rng=rng,
            max_time=50_000,
            confirm_time=5.0,
            probe_silence=False,
        )
        assert outcome.converged
        assert not outcome.silent_certified


class TestRepeatConvergence:
    def test_trials_independent_and_summarizable(self):
        outcomes = repeat_convergence(
            make_protocol=lambda: SilentNStateSSR(6),
            make_states=lambda p, rng: p.worst_case_configuration(),
            seed=5,
            label="t",
            trials=4,
            max_time=10_000,
        )
        assert len(outcomes) == 4
        summary = summarize_outcomes(outcomes)
        assert summary.count == 4
        assert summary.mean > 0

    def test_convergence_times_raises_on_failures(self):
        bad = [
            ConvergenceOutcome(
                n=4,
                converged=False,
                convergence_time=float("nan"),
                interactions=10,
                silent_certified=False,
                regressions=0,
            )
        ]
        with pytest.raises(RuntimeError):
            convergence_times(bad)


class TestExperimentReport:
    def test_checks_and_all_passed(self):
        report = ExperimentReport("x", "Title", columns=["a"])
        report.add_check("good", passed=True, measured=1, expected="1")
        assert report.all_passed
        report.add_check("bad", passed=False, measured=2, expected="1")
        assert not report.all_passed
        assert "FAIL" in str(report.checks["bad"])

    def test_render_markdown_contains_rows_and_checks(self):
        report = ExperimentReport("x", "My Title", columns=["n", "time"])
        report.add_row(n=8, time=1.5)
        report.add_check("shape", passed=True, measured=1.0, expected="~1")
        report.notes.append("a note")
        text = report.render_markdown()
        assert "## My Title" in text
        assert "| n | time |" in text
        assert "| 8 | 1.5 |" in text
        assert "shape" in text and "PASS" in text
        assert "a note" in text
