"""Parity and unit tests for the vectorized kernel (`VectorSimulation`).

The load-bearing guarantees, mirroring the count engine's own suite:

* with ``batch=1`` the kernel is bit-exact per seed against
  :class:`CountSimulation` (it takes the scalar path end to end);
* jump-mode trajectories are bit-exact *regardless* of batch size --
  the class-pruned classification registers the surviving pairs in the
  same order as the full scan, and jump stepping is scalar;
* batched (``batch>1``) interaction-mode runs agree in distribution
  (KS) with the count engine on both Table 1 protocols and on a
  genuinely randomized protocol;
* numpy is optional: without it ``select_count_engine("vector")``
  falls back to the pure-python engine and the class refuses to build;
* ``repro verify``'s exact-chain oracle accepts the kernel's own
  Monte-Carlo band at small n;
* ``corrupt()`` resynchronizes the batched bookkeeping.
"""

import random
import statistics

import pytest

import repro.core.kernel as kernel_module
from repro.core.countsim import CountSimulation
from repro.core.fastpath import worst_case_ciw_counts
from repro.core.kernel import (
    VectorSimulation,
    numpy_available,
    select_count_engine,
)
from repro.core.rng import make_rng
from repro.protocols.base import RankingProtocol
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentSSR
from repro.statics.schema import FieldSpec, IntRange, register_schema, scalar_schema
from tests.core.test_countsim import ks_statistic

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vector kernel requires numpy"
)


class KernelCoinFlip(RankingProtocol[int]):
    """States {0, 1}: (1,1) flips the responder with prob 1/2.

    A randomized pair forces the batched path to block and replay
    through the scalar engine on every (1,1) draw.
    """

    silent = False

    def __init__(self, n: int):
        super().__init__(n)

    def transition(self, a: int, b: int, rng: random.Random):
        if a == 1 and b == 1 and rng.random() < 0.5:
            return 1, 0
        if a == 0 and b == 0:
            return 0, 1
        return a, b

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def random_state(self, rng: random.Random) -> int:
        return rng.randrange(2)

    def summarize(self, state: int) -> int:
        return state

    def rank_of(self, state: int):
        return None

    def state_count(self) -> int:
        return 2


@register_schema(KernelCoinFlip)
def _kernel_coinflip_schema(protocol: KernelCoinFlip):
    return scalar_schema(
        "KernelCoinFlip", FieldSpec("value", IntRange(0, 1)), build=lambda value: value
    )


# ---------------------------------------------------------------------------
# Engine selection and the numpy-optional fallback
# ---------------------------------------------------------------------------


class TestSelection:
    def test_count_resolves_to_count_engine(self):
        assert select_count_engine("count") is CountSimulation

    @requires_numpy
    def test_vector_resolves_to_kernel(self):
        assert select_count_engine("vector") is VectorSimulation

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            select_count_engine("warp")

    def test_fallback_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernel_module, "_np", None)
        assert not kernel_module.numpy_available()
        assert kernel_module.select_count_engine("vector") is CountSimulation
        protocol = SilentNStateSSR(4)
        with pytest.raises(RuntimeError):
            VectorSimulation(protocol, [0, 1, 2, 3], rng=make_rng(1, "fallback"))

    @requires_numpy
    def test_invalid_batch_rejected(self):
        protocol = SilentNStateSSR(4)
        with pytest.raises(ValueError):
            VectorSimulation(
                protocol, [0, 1, 2, 3], rng=make_rng(2, "batch"), batch=0
            )


# ---------------------------------------------------------------------------
# Bit-exact parity with CountSimulation
# ---------------------------------------------------------------------------


@requires_numpy
class TestScalarParity:
    """batch=1 pins the scalar path: per-seed trajectories coincide."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_auto_mode_trajectory_is_bit_exact(self, seed):
        n = 48
        protocol_a, protocol_b = SilentNStateSSR(n), SilentNStateSSR(n)
        rng_a = make_rng(seed, "kernel-exact")
        states = protocol_a.random_configuration(rng_a)
        count = CountSimulation(protocol_a, states, rng=rng_a)
        vector = VectorSimulation(
            protocol_b, states, rng=make_rng(seed, "kernel-exact"), batch=1
        )
        # Re-consume the configuration draw on the kernel's rng so both
        # engines see identical scheduling streams from here on.
        protocol_b.random_configuration(vector.rng)
        for _ in range(200):
            count.run(500)
            vector.run(500)
            assert vector.interactions == count.interactions
            assert vector.events == count.events
            assert vector.changes == count.changes
            assert vector.mode == count.mode
            assert vector.occupancy() == count.occupancy()
            if count.silent:
                break
        assert count.silent and vector.silent
        assert vector.streak_start == count.streak_start

    def test_jump_mode_is_bit_exact_even_when_batched(self):
        """Class-pruned classification preserves pair-registration order,
        so jump trajectories match the count engine at any batch size."""
        n = 96
        counts = worst_case_ciw_counts(n)
        runs = {}
        for name, cls, batch in [
            ("count", CountSimulation, None),
            ("vector", VectorSimulation, None),
        ]:
            protocol = SilentNStateSSR(n)
            kwargs = {} if cls is CountSimulation else {"batch": batch}
            sim = cls(
                protocol,
                protocol.counts_to_configuration(counts),
                rng=make_rng(7, "kernel-jump"),
                mode="jump",
                **kwargs,
            )
            assert sim.run_until_silent()
            runs[name] = (sim.interactions, sim.events, sim.streak_start)
        assert runs["vector"] == runs["count"]

    def test_randomized_protocol_batch1_parity(self):
        n, horizon = 8, 3000
        protocol_a, protocol_b = KernelCoinFlip(n), KernelCoinFlip(n)
        states = [1] * n
        count = CountSimulation(
            protocol_a, states, rng=make_rng(9, "kernel-coin"), mode="interaction"
        )
        vector = VectorSimulation(
            protocol_b,
            states,
            rng=make_rng(9, "kernel-coin"),
            mode="interaction",
            batch=1,
        )
        count.run(horizon)
        vector.run(horizon)
        assert vector.occupancy() == count.occupancy()
        assert vector.changes == count.changes
        # Identical RNG consumption: the streams stay aligned after.
        assert vector.rng.random() == count.rng.random()


# ---------------------------------------------------------------------------
# Batched stepping semantics
# ---------------------------------------------------------------------------


@requires_numpy
class TestBatchedStepping:
    def test_interaction_budget_is_exact(self):
        protocol = SilentNStateSSR(8)
        sim = VectorSimulation(
            protocol,
            protocol.worst_case_configuration(),
            rng=make_rng(11, "kernel-budget"),
            mode="interaction",
        )
        sim.run(123)
        assert sim.interactions == 123
        assert sim.events == 123
        sim.run(4096 + 7)
        assert sim.interactions == 123 + 4096 + 7

    def test_auto_mode_switches_to_jump_and_converges(self):
        n = 64
        protocol = SilentNStateSSR(n)
        rng = make_rng(12, "kernel-switch")
        sim = VectorSimulation(protocol, protocol.random_configuration(rng), rng=rng)
        assert sim.mode == "interaction"
        assert sim.run_until_silent(max_interactions=10**8)
        assert sim.mode == "jump"
        assert sim.silent
        assert sim.correct

    def test_randomized_pairs_replay_scalar(self):
        protocol = KernelCoinFlip(4)
        sim = VectorSimulation(
            protocol, [1, 1, 1, 1], rng=make_rng(13, "kernel-memo"), mode="interaction"
        )
        sim.run(400)
        # Freezing the first (1,1) outcome into the dense table would
        # either pin the population or collapse it; under the true 1/2
        # law both states stay occupied with overwhelming probability.
        occupancy = sim.occupancy()
        assert occupancy.get((0, 1), 0) >= 1
        assert occupancy.get((0, 0), 0) >= 1

    def test_table_overflow_disables_batching_not_correctness(self, monkeypatch):
        monkeypatch.setattr(kernel_module, "MAX_TABLE_DIM", 4)
        n = 16
        protocol = SilentNStateSSR(n)
        rng = make_rng(14, "kernel-cap")
        sim = VectorSimulation(
            protocol, protocol.random_configuration(rng), rng=rng
        )
        assert sim.run_until_silent(max_interactions=10**8)
        assert sim._batch_disabled  # more than 4 slots were occupied
        assert sim.correct

    def test_corrupt_resyncs_batched_state(self):
        n = 32
        protocol = SilentNStateSSR(n)
        rng = make_rng(15, "kernel-corrupt")
        sim = VectorSimulation(protocol, protocol.random_configuration(rng), rng=rng)
        assert sim.run_until_silent(max_interactions=10**8)
        victims = sim.sample_victim_slots(4, rng)
        sim.corrupt(victims, [protocol.random_state(rng) for _ in victims])
        assert sum(sim.occupancy().values()) == n
        assert sim.run_until_silent(max_interactions=10**8)
        assert sim.correct


# ---------------------------------------------------------------------------
# Distributional equivalence of the batched path
# ---------------------------------------------------------------------------


@requires_numpy
@pytest.mark.slow
class TestBatchedDistribution:
    """Seeded KS checks: batched kernel vs count engine laws coincide.

    Same thresholds as the count engine's own equivalence suite: with
    120-vs-120 samples the 5%-level KS critical value is ~0.175.
    """

    TRIALS = 120

    def _stabilization_times(self, make_protocol, make_states, engine, label):
        times = []
        for trial in range(self.TRIALS):
            protocol = make_protocol()
            rng = make_rng(51, label, trial)
            states = make_states(protocol, rng)
            cls = CountSimulation if engine == "count" else VectorSimulation
            sim = cls(protocol, states, rng=rng)
            assert sim.run_until_silent(max_interactions=10**8)
            times.append(sim.streak_start or 0)
        return times

    def test_ciw_convergence_interactions(self):
        def protocol():
            return SilentNStateSSR(6)

        def states(p, rng):
            return p.random_configuration(rng)

        count_times = self._stabilization_times(protocol, states, "count", "ks-c")
        vector_times = self._stabilization_times(protocol, states, "vector", "ks-v")
        assert ks_statistic(count_times, vector_times) < 0.17
        assert statistics.mean(vector_times) == pytest.approx(
            statistics.mean(count_times), rel=0.15
        )

    def test_optimal_silent_convergence_interactions(self):
        def protocol():
            return OptimalSilentSSR(6)

        def states(p, rng):
            return p.duplicate_rank_configuration(rank=1)

        count_times = self._stabilization_times(protocol, states, "count", "ks-os-c")
        vector_times = self._stabilization_times(protocol, states, "vector", "ks-os-v")
        assert ks_statistic(count_times, vector_times) < 0.17
        assert statistics.mean(vector_times) == pytest.approx(
            statistics.mean(count_times), rel=0.15
        )

    def test_randomized_protocol_occupancy_distribution(self):
        n, horizon = 6, 60

        def ones_after(engine, label):
            ones = []
            for trial in range(self.TRIALS):
                protocol = KernelCoinFlip(n)
                rng = make_rng(52, label, trial)
                states = protocol.random_configuration(rng)
                cls = CountSimulation if engine == "count" else VectorSimulation
                sim = cls(protocol, states, rng=rng)
                sim.run(horizon)
                ones.append(sim.occupancy().get((0, 1), 0))
            return ones

        count_ones = ones_after("count", "ks-coin-c")
        vector_ones = ones_after("vector", "ks-coin-v")
        assert ks_statistic(count_ones, vector_ones) < 0.17


# ---------------------------------------------------------------------------
# Exact-chain oracle acceptance
# ---------------------------------------------------------------------------


@requires_numpy
@pytest.mark.slow
class TestVerifyOracle:
    def test_vector_estimate_within_exact_band(self):
        from repro.statics.oracle import verify_target

        report = verify_target("SilentNStateSSR", n=4, trials=300)
        assert report.ok, [f.message for f in report.findings]
        vector = [e for e in report.estimates if e.engine == "vector"]
        assert vector, "the oracle must exercise the vector engine"
        assert vector[0].within_band
