"""Reproducibility: identical seeds give identical trajectories.

Everything stochastic in the package flows through explicit
:class:`random.Random` instances, so a (protocol, seed, configuration)
triple must determine the entire execution.  These tests pin that down
for every protocol -- the property every experiment's "seed=..." line
relies on.
"""

import pytest

from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentSSR
from repro.protocols.sublinear.protocol import SublinearTimeSSR
from repro.protocols.sync_dictionary import SyncDictionarySSR

PROTOCOLS = {
    "ciw": lambda: SilentNStateSSR(8),
    "optimal-silent": lambda: OptimalSilentSSR(8),
    "sublinear-h1": lambda: SublinearTimeSSR(6, h=1),
    "sublinear-coin": lambda: SublinearTimeSSR(6, h=1, deterministic_names=True),
    "sync-dict": lambda: SyncDictionarySSR(6),
}


def trajectory(factory, seed: int, steps: int):
    """The sequence of per-step summary tuples of a seeded run."""
    protocol = factory()
    rng = make_rng(seed, "determinism")
    sim = Simulation(protocol, protocol.random_configuration(rng), rng=rng)
    frames = []
    for _ in range(steps):
        sim.step()
        frames.append(tuple(protocol.summarize(s) for s in sim.states))
    return frames


@pytest.mark.parametrize("name", list(PROTOCOLS))
def test_same_seed_same_trajectory(name):
    factory = PROTOCOLS[name]
    assert trajectory(factory, seed=5, steps=400) == trajectory(
        factory, seed=5, steps=400
    )


@pytest.mark.parametrize("name", ["ciw", "optimal-silent", "sublinear-h1"])
def test_different_seeds_diverge(name):
    factory = PROTOCOLS[name]
    assert trajectory(factory, seed=5, steps=400) != trajectory(
        factory, seed=6, steps=400
    )


def test_experiment_reports_are_reproducible():
    """Same seed, same experiment -> byte-identical report rows."""
    from repro.experiments.observation22 import run

    first = run(seed=123, quick=True)
    second = run(seed=123, quick=True)
    assert first.rows == second.rows
    assert {k: str(v) for k, v in first.checks.items()} == {
        k: str(v) for k, v in second.checks.items()
    }
