"""Tests for repro.core.scheduler."""

from collections import Counter

import pytest

from repro.core.scheduler import (
    CallbackScheduler,
    ScriptedScheduler,
    UniformRandomScheduler,
    script_from_names,
)


class TestUniformRandomScheduler:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            UniformRandomScheduler(1)

    def test_pairs_are_distinct_and_in_range(self, rng):
        scheduler = UniformRandomScheduler(5)
        for _ in range(500):
            i, j = scheduler.next_pair(rng)
            assert i != j
            assert 0 <= i < 5
            assert 0 <= j < 5

    def test_ordered_pairs_roughly_uniform(self, rng):
        n, draws = 4, 24_000
        scheduler = UniformRandomScheduler(n)
        counts = Counter(scheduler.next_pair(rng) for _ in range(draws))
        assert len(counts) == n * (n - 1)
        expected = draws / (n * (n - 1))
        for pair, count in counts.items():
            assert abs(count - expected) < 6 * expected**0.5, pair

    def test_both_orderings_occur(self, rng):
        scheduler = UniformRandomScheduler(2)
        pairs = {scheduler.next_pair(rng) for _ in range(100)}
        assert pairs == {(0, 1), (1, 0)}


class TestScriptedScheduler:
    def test_replays_in_order(self, rng):
        script = [(0, 1), (2, 3), (1, 0)]
        scheduler = ScriptedScheduler(script)
        assert [scheduler.next_pair(rng) for _ in range(3)] == script

    def test_exhaustion_raises_stop_iteration(self, rng):
        scheduler = ScriptedScheduler([(0, 1)])
        scheduler.next_pair(rng)
        with pytest.raises(StopIteration):
            scheduler.next_pair(rng)


class TestCallbackScheduler:
    def test_delegates_to_callback(self, rng):
        calls = []

        def choose(step_rng):
            calls.append(step_rng)
            return (3, 1)

        scheduler = CallbackScheduler(choose)
        assert scheduler.next_pair(rng) == (3, 1)
        assert calls == [rng]


class TestScriptFromNames:
    def test_translates_names(self):
        pairs = script_from_names(["a", "b", "c"], [("a", "b"), ("c", "a")])
        assert pairs == [(0, 1), (2, 0)]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            script_from_names(["a", "a"], [])

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            script_from_names(["a", "b"], [("a", "z")])
