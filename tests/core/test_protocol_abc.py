"""Tests for the PopulationProtocol base class and error hierarchy."""

import pytest

from repro.core.errors import (
    ConfigurationError,
    NotSilentError,
    ProtocolDefinitionError,
    ReproError,
    SimulationLimitError,
)
from repro.core.protocol import PopulationProtocol, check_population
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.sync_dictionary import SyncDictionarySSR


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            ConfigurationError,
            SimulationLimitError,
            ProtocolDefinitionError,
            NotSilentError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_simulation_limit_carries_interactions(self):
        error = SimulationLimitError("out of budget", interactions=123)
        assert error.interactions == 123


class TestPopulationProtocolBasics:
    def test_population_size_validated(self):
        with pytest.raises(ValueError):
            SilentNStateSSR(0)

    def test_n_is_read_only_property(self):
        protocol = SilentNStateSSR(5)
        assert protocol.n == 5
        with pytest.raises(AttributeError):
            protocol.n = 7

    def test_initial_configuration_size(self, rng):
        protocol = SilentNStateSSR(6)
        assert len(protocol.initial_configuration(rng)) == 6

    def test_random_configuration_size(self, rng):
        protocol = SilentNStateSSR(6)
        assert len(protocol.random_configuration(rng)) == 6

    def test_default_describe_is_repr(self, rng):
        protocol = SyncDictionarySSR(4)
        # SyncDictionarySSR overrides describe; base default checked via a stub.

        class Stub(PopulationProtocol):
            def transition(self, a, b, rng):
                return a, b

            def initial_state(self, rng):
                return 0

            def random_state(self, rng):
                return 0

            def is_correct(self, states):
                return True

            def summarize(self, state):
                return state

        assert Stub(2).describe(41) == "41"

    def test_default_is_pair_null_raises(self):
        protocol = SyncDictionarySSR(4)
        with pytest.raises(NotSilentError):
            protocol.is_pair_null(None, None)

    def test_default_state_count_raises(self):
        protocol = SyncDictionarySSR(4)
        with pytest.raises(NotImplementedError):
            protocol.state_count()

    def test_check_population(self):
        protocol = SilentNStateSSR(3)
        check_population(protocol, [0, 1, 2])  # no raise
        with pytest.raises(ConfigurationError):
            check_population(protocol, [0, 1])


class TestRankingProtocolDerivedBehavior:
    def test_is_correct_uses_rank_of(self):
        protocol = SilentNStateSSR(3)
        assert protocol.is_correct([2, 0, 1])
        assert not protocol.is_correct([2, 2, 1])

    def test_is_leader_is_rank_one(self):
        protocol = SilentNStateSSR(3)
        assert protocol.is_leader(0)
        assert not protocol.is_leader(1)

    def test_convergence_monitor_is_bound_to_protocol(self, rng):
        protocol = SilentNStateSSR(3)
        monitor = protocol.convergence_monitor()
        monitor.on_start([0, 1, 2])
        assert monitor.correct
