"""Tests for repro.core.chaos and the engine-parity recovery contract.

Covers the three composable adversary pieces (fault processes, victim
selectors + corruption models via :class:`Adversary`, scheduler-level
faults), the engine-neutral fault surfaces over both the generic and
the count engine, and the cross-engine contract of
:func:`repro.core.faults.measure_recovery`: identical semantics, and
statistically indistinguishable recovery-time distributions.
"""

import math
import random

import pytest

from repro.core.chaos import (
    Adversary,
    BurstProcess,
    CloneCorruption,
    CountSurface,
    FaultEvent,
    FaultySchedulerAdapter,
    PoissonProcess,
    SimulationSurface,
    UniformVictims,
    adversary_names,
    as_fault_process,
    make_adversary,
)
from repro.core.countsim import CountSimulation
from repro.core.faults import FaultSchedule, measure_recovery
from repro.core.rng import make_rng
from repro.core.scheduler import UniformRandomScheduler
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentSSR
from repro.protocols.sync_dictionary import SyncDictionarySSR


class TestFaultProcesses:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=-1.0, agents=1)
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, agents=0)

    def test_burst_process_requires_time_order(self):
        with pytest.raises(ValueError):
            BurstProcess([FaultEvent(5.0, 1), FaultEvent(1.0, 1)])

    def test_periodic_matches_fault_schedule(self):
        process = BurstProcess.periodic(period=3.0, agents=2, count=3)
        assert [e.at for e in process.bursts] == [3.0, 6.0, 9.0]
        assert all(e.agents == 2 for e in process.bursts)

    def test_as_fault_process_coerces_schedule(self):
        schedule = FaultSchedule.periodic(period=2.0, agents=1, count=2)
        process = as_fault_process(schedule)
        assert [(e.at, e.agents) for e in process.events(random.Random(0))] == [
            (2.0, 1),
            (4.0, 1),
        ]
        assert as_fault_process(process) is process
        with pytest.raises(TypeError):
            as_fault_process(42)

    def test_poisson_is_seed_reproducible_and_bounded(self):
        process = PoissonProcess(0.5, agents=3, horizon=40.0)
        first = list(process.events(random.Random(7)))
        second = list(process.events(random.Random(7)))
        assert first == second
        assert first  # rate * horizon = 20 expected events
        times = [e.at for e in first]
        assert times == sorted(times)
        assert all(0 < t < 40.0 for t in times)
        assert all(e.agents == 3 for e in first)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0, horizon=1.0)
        with pytest.raises(ValueError):
            PoissonProcess(1.0, horizon=0.0)
        with pytest.raises(ValueError):
            PoissonProcess(1.0, agents=0, horizon=1.0)


def _stable_ciw_pair(n):
    """A stabilized CIW population on both engines (states 0..n-1)."""
    states = list(range(n))
    protocol = SilentNStateSSR(n)
    sim = Simulation(protocol, states, rng=random.Random(1))
    count = CountSimulation(SilentNStateSSR(n), states, rng=random.Random(1))
    return SimulationSurface(sim), CountSurface(count)


class TestFaultSurfaces:
    @pytest.mark.parametrize("which", [0, 1], ids=["generic", "count"])
    def test_sample_victims_counts(self, which, rng):
        surface = _stable_ciw_pair(8)[which]
        victims = surface.sample_victims(3, rng)
        assert len(victims) == 3
        assert len(surface.sample_victims(99, rng)) == 8  # capped at n

    @pytest.mark.parametrize("which", [0, 1], ids=["generic", "count"])
    def test_ranked_victims_target_leadership(self, which, rng):
        surface = _stable_ciw_pair(8)[which]
        low = surface.ranked_victims(2, highest=False)
        high = surface.ranked_victims(2, highest=True)
        # CIW rank(state) == state + 1, so leadership = states {0, 1},
        # max rank = states {7, 6} -- on either victim representation.
        assert sorted(surface.protocol.rank_of(_state_of(surface, v)) for v in low) == [
            1,
            2,
        ]
        assert sorted(
            surface.protocol.rank_of(_state_of(surface, v)) for v in high
        ) == [7, 8]

    @pytest.mark.parametrize("which", [0, 1], ids=["generic", "count"])
    def test_sample_live_state_leader(self, which, rng):
        surface = _stable_ciw_pair(8)[which]
        state = surface.sample_live_state(rng, leader=True)
        assert surface.protocol.rank_of(state) == 1

    def test_generic_overwrite_resyncs_monitors(self, rng):
        protocol = SilentNStateSSR(6)
        monitor = protocol.convergence_monitor()
        sim = Simulation(protocol, list(range(6)), rng=rng, monitors=[monitor])
        sim.run(1)
        assert monitor.correct
        surface = SimulationSurface(sim)
        surface.overwrite([0], [1])  # duplicate rank 2
        assert sim.states[0] == 1
        assert not monitor.correct
        assert surface.injected == 1

    def test_count_overwrite_updates_multiset(self, rng):
        _, surface = _stable_ciw_pair(6)
        sim = surface.sim
        victims = surface.ranked_victims(1, highest=False)  # the leader slot
        surface.overwrite(victims, [3])
        assert sorted(sim.expand_states()) == [1, 2, 3, 3, 4, 5]
        assert not sim.correct

    def test_count_ranked_victims_expand_multiplicity(self, rng):
        # Three agents share state 2 -> the slot is returned three times.
        states = [2, 2, 2, 0, 1, 5]
        sim = CountSimulation(SilentNStateSSR(6), states, rng=random.Random(2))
        surface = CountSurface(sim)
        high = surface.ranked_victims(3, highest=True)
        assert [surface.sim.slot_state(v) for v in high] == [5, 2, 2]


def _state_of(surface, victim):
    """Resolve a victim reference to a state on either surface type."""
    if isinstance(surface, CountSurface):
        return surface.sim.slot_state(victim)
    return surface.sim.states[victim]


class TestAdversaries:
    def test_registry_names(self):
        assert set(adversary_names()) == {
            "random",
            "leader",
            "max-rank",
            "clone",
            "clone-leader",
        }
        with pytest.raises(ValueError):
            make_adversary("nope")

    @pytest.mark.parametrize("name", adversary_names())
    @pytest.mark.parametrize("which", [0, 1], ids=["generic", "count"])
    def test_each_adversary_strikes_both_engines(self, name, which, rng):
        surface = _stable_ciw_pair(8)[which]
        struck = make_adversary(name).strike(surface, 3, rng)
        assert struck == 3
        assert surface.injected == 3

    def test_clone_leader_manufactures_rank_collision(self, rng):
        surface, _ = _stable_ciw_pair(8)
        adversary = Adversary("t", UniformVictims(), CloneCorruption("leader"))
        adversary.strike(surface, 3, rng)
        assert surface.sim.states.count(0) >= 3  # clones of the rank-1 state

    def test_ranked_strikes_identical_across_engines(self):
        """Deterministic selectors: same seed -> same multiset, either engine.

        (Uniform selectors consume randomness engine-specifically, so
        only the distributions -- not individual strikes -- agree; that
        contract is covered by the KS test below.)
        """
        for name in ("leader", "max-rank"):
            generic, count = _stable_ciw_pair(8)
            make_adversary(name).strike(generic, 3, make_rng(5, name))
            make_adversary(name).strike(count, 3, make_rng(5, name))
            assert sorted(count.sim.expand_states()) == sorted(
                generic.sim.states
            ), name


class TestFaultySchedulerAdapter:
    def test_validation(self):
        inner = UniformRandomScheduler(8)
        with pytest.raises(ValueError):
            FaultySchedulerAdapter(inner, omission_rate=1.0)
        with pytest.raises(ValueError):
            FaultySchedulerAdapter(inner, hot_rate=0.5)  # no hot agents

    def test_omission_drops_interactions(self, rng):
        adapter = FaultySchedulerAdapter(
            UniformRandomScheduler(8), omission_rate=0.5
        )
        drawn = [adapter.next_pair(rng) for _ in range(400)]
        dropped = sum(1 for pair in drawn if pair is None)
        assert adapter.dropped == dropped
        assert 120 < dropped < 280  # ~200 expected

    def test_stuck_agents_never_interact(self, rng):
        protocol = SilentNStateSSR(6)
        adapter = FaultySchedulerAdapter(
            UniformRandomScheduler(6), stuck=(0,)
        )
        # Duplicate-rank start: agent 0 would normally move.
        sim = Simulation(protocol, [1, 1, 2, 3, 4, 5], rng=rng, scheduler=adapter)
        sim.run(4000)
        assert sim.states[0] == 1  # memory intact, never updated
        assert adapter.dropped > 0

    def test_skew_favors_hot_initiators(self, rng):
        adapter = FaultySchedulerAdapter(
            UniformRandomScheduler(8), hot_agents=(3,), hot_rate=0.9
        )
        pairs = [adapter.next_pair(rng) for _ in range(300)]
        hot = sum(1 for pair in pairs if pair and pair[0] == 3)
        assert adapter.skewed > 200
        assert hot > 200
        assert all(pair[0] != pair[1] for pair in pairs if pair)

    def test_simulation_survives_omission_faults(self, rng):
        protocol = SilentNStateSSR(8)
        adapter = FaultySchedulerAdapter(
            UniformRandomScheduler(8), omission_rate=0.3
        )
        monitor = protocol.convergence_monitor()
        sim = Simulation(
            protocol,
            protocol.worst_case_configuration(),
            rng=rng,
            scheduler=adapter,
            monitors=[monitor],
        )
        sim.run(60_000)
        assert monitor.correct  # still stabilizes, just slower


def _ks_statistic(a, b):
    """Two-sample Kolmogorov-Smirnov statistic."""
    both = sorted(set(a) | set(b))
    d = 0.0
    for x in both:
        fa = sum(1 for v in a if v <= x) / len(a)
        fb = sum(1 for v in b if v <= x) / len(b)
        d = max(d, abs(fa - fb))
    return d


class TestMeasureRecoveryEngines:
    def test_count_engine_rejects_scheduler(self, rng):
        with pytest.raises(ValueError):
            measure_recovery(
                SilentNStateSSR(8),
                FaultSchedule.periodic(period=8.0, agents=2, count=1),
                rng=rng,
                settle_time=100.0,
                max_recovery_time=100.0,
                engine="count",
                scheduler=UniformRandomScheduler(8),
            )

    def test_count_engine_rejects_ineligible_protocol(self, rng):
        with pytest.raises(ValueError):
            measure_recovery(
                SyncDictionarySSR(6),
                FaultSchedule.periodic(period=8.0, agents=2, count=1),
                rng=rng,
                settle_time=100.0,
                max_recovery_time=100.0,
                engine="count",
            )

    def test_unknown_engine_and_bad_probe(self, rng):
        schedule = FaultSchedule.periodic(period=8.0, agents=2, count=1)
        with pytest.raises(ValueError):
            measure_recovery(
                SilentNStateSSR(8),
                schedule,
                rng=rng,
                settle_time=10.0,
                max_recovery_time=10.0,
                engine="turbo",
            )
        with pytest.raises(ValueError):
            measure_recovery(
                SilentNStateSSR(8),
                schedule,
                rng=rng,
                settle_time=10.0,
                max_recovery_time=10.0,
                probe_resolution=0.0,
            )

    @pytest.mark.parametrize("engine", ["generic", "count"])
    @pytest.mark.parametrize("adversary", adversary_names())
    def test_all_adversaries_recover_on_both_engines(self, engine, adversary):
        n = 16
        report = measure_recovery(
            SilentNStateSSR(n),
            FaultSchedule.periodic(period=4.0 * n, agents=3, count=2),
            rng=make_rng(11, engine, adversary),
            initial_states=list(range(n)),
            settle_time=10.0,
            max_recovery_time=200.0 * n,
            engine=engine,
            adversary=adversary,
        )
        assert len(report.records) == 2
        assert all(record.recovered for record in report.records)
        assert all(record.injected == 3 for record in report.records)
        assert 0.0 < report.availability <= 1.0

    def test_poisson_process_drives_recovery(self):
        n = 12
        report = measure_recovery(
            SilentNStateSSR(n),
            PoissonProcess(0.1, agents=2, horizon=60.0),
            rng=make_rng(17, "poisson"),
            initial_states=list(range(n)),
            settle_time=10.0,
            max_recovery_time=200.0 * n,
        )
        assert report.records
        assert all(record.recovered for record in report.records)

    def test_fractional_availability_probe(self, rng):
        n = 12
        report = measure_recovery(
            SilentNStateSSR(n),
            FaultSchedule.periodic(period=5.0, agents=n, count=1),
            rng=rng,
            initial_states=list(range(n)),
            settle_time=10.0,
            max_recovery_time=200.0 * n,
            probe_resolution=0.25,
            engine="generic",
        )
        assert 0.0 < report.availability < 1.0
        assert report.total_time > 0

    @pytest.mark.slow
    def test_count_and_generic_recovery_distributions_agree(self):
        """KS test: same schedule, same adversary, both engines at n=64.

        The engines consume randomness differently, so individual runs
        differ; the *distributions* of recovery times must not.
        """
        n, trials = 64, 20
        schedule = FaultSchedule.periodic(period=6.0 * n, agents=n // 4, count=2)

        def recoveries(engine):
            times = []
            for trial in range(trials):
                report = measure_recovery(
                    SilentNStateSSR(n),
                    schedule,
                    rng=make_rng(23, "ks", engine, trial),
                    initial_states=list(range(n)),
                    settle_time=10.0,
                    max_recovery_time=500.0 * n,
                    engine=engine,
                )
                times.extend(r.recovery_time for r in report.records)
                assert all(r.recovered for r in report.records)
            return times

        generic = recoveries("generic")
        count = recoveries("count")
        d = _ks_statistic(generic, count)
        m = len(generic)
        # alpha = 0.001 critical value for the two-sample KS test.
        critical = 1.949 * math.sqrt(2 / m)
        assert d < critical, f"KS statistic {d:.3f} >= {critical:.3f}"

    @pytest.mark.slow
    def test_optimal_silent_four_burst_recovery_wall_clock(self):
        """The acceptance workload, at the n the Python engine sustains.

        Four bursts against Optimal-Silent-SSR on the count engine;
        recovery is Theta(n^2) simulated events per reset, which caps
        the in-suite population at n=256 (see docs/robustness.md for
        measured scaling and the offline benchmark at larger n).
        """
        import time

        n = 256
        protocol = OptimalSilentSSR(n)
        started = time.monotonic()
        report = measure_recovery(
            protocol,
            FaultSchedule.periodic(period=2.0 * n, agents=n // 8, count=4),
            rng=make_rng(31, "wall"),
            initial_states=protocol.ranked_configuration(),
            settle_time=10.0,
            max_recovery_time=50.0 * n,
            engine="count",
        )
        elapsed = time.monotonic() - started
        assert len(report.records) == 4
        assert all(record.recovered for record in report.records)
        assert elapsed < 60.0, f"4-burst recovery took {elapsed:.1f}s"
