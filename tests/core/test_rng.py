"""Tests for repro.core.rng: deterministic, independent seed streams."""

from repro.core.rng import derive_seed, make_rng, trial_rngs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_paths_do_not_collide_by_concatenation(self):
        # ("ab",) and ("a", "b") must be distinct streams.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_64_bit_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**64

    def test_int_and_str_labels_both_work(self):
        assert derive_seed(1, 5) == derive_seed(1, "5")


class TestMakeRng:
    def test_same_labels_same_stream(self):
        a = make_rng(7, "trial", 3)
        b = make_rng(7, "trial", 3)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_different_stream(self):
        a = make_rng(7, "trial", 3)
        b = make_rng(7, "trial", 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestTrialRngs:
    def test_yields_requested_count(self):
        assert len(list(trial_rngs(1, 7, "x"))) == 7

    def test_streams_are_independent_of_trial_count(self):
        # Adding trials must not perturb earlier streams.
        first_of_three = next(iter(trial_rngs(1, 3, "x"))).random()
        first_of_ten = next(iter(trial_rngs(1, 10, "x"))).random()
        assert first_of_three == first_of_ten
