"""Tests for the fault-injection subsystem."""

import pytest

from repro.core.faults import (
    FaultBurst,
    FaultInjector,
    FaultSchedule,
    measure_recovery,
)
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentSSR


class TestScheduleConstruction:
    def test_burst_validation(self):
        with pytest.raises(ValueError):
            FaultBurst(at=-1.0, agents=1)
        with pytest.raises(ValueError):
            FaultBurst(at=1.0, agents=0)

    def test_schedule_must_be_ordered(self):
        with pytest.raises(ValueError):
            FaultSchedule([FaultBurst(2.0, 1), FaultBurst(1.0, 1)])

    def test_periodic_factory(self):
        schedule = FaultSchedule.periodic(period=5.0, agents=2, count=3)
        assert [b.at for b in schedule.bursts] == [5.0, 10.0, 15.0]
        assert all(b.agents == 2 for b in schedule.bursts)
        with pytest.raises(ValueError):
            FaultSchedule.periodic(period=0, agents=1, count=1)


class TestFaultInjector:
    def test_strike_corrupts_exactly_k_distinct_agents(self, rng):
        protocol = SilentNStateSSR(8)
        sim = Simulation(protocol, list(range(8)), rng=rng)
        injector = FaultInjector(protocol, make_rng(1, "strike"))
        victims = injector.strike(sim, 3)
        assert len(set(victims)) == 3
        assert injector.injected == 3

    def test_strike_caps_at_population(self, rng):
        protocol = SilentNStateSSR(4)
        sim = Simulation(protocol, [0, 1, 2, 3], rng=rng)
        injector = FaultInjector(protocol, make_rng(2, "strike"))
        victims = injector.strike(sim, 99)
        assert len(victims) == 4

    def test_strike_resynchronizes_monitors(self, rng):
        protocol = SilentNStateSSR(4)
        monitor = protocol.convergence_monitor()
        sim = Simulation(protocol, [0, 1, 2, 3], rng=rng, monitors=[monitor])
        assert monitor.correct
        injector = FaultInjector(protocol, make_rng(3, "strike"))
        # Strike until the ranking actually breaks (some strikes may
        # happen to rewrite a state with its own value).
        for _ in range(50):
            injector.strike(sim, 2)
            if not protocol.is_correct(sim.states):
                break
        assert monitor.correct == protocol.is_correct(sim.states)


class TestMeasureRecovery:
    def test_recovers_from_every_burst(self):
        protocol = OptimalSilentSSR(8)
        rng = make_rng(4, "recovery")
        report = measure_recovery(
            protocol,
            FaultSchedule.periodic(period=50.0, agents=4, count=2),
            rng=rng,
            settle_time=50_000.0,
            max_recovery_time=50_000.0,
        )
        assert len(report.records) == 2
        assert all(record.recovered for record in report.records)
        assert report.worst_recovery > 0
        assert 0.0 < report.availability <= 1.0

    def test_unrecoverable_budget_reports_failure(self):
        protocol = SilentNStateSSR(8)
        rng = make_rng(5, "recovery")
        report = measure_recovery(
            protocol,
            FaultSchedule([FaultBurst(at=1.0, agents=8)]),
            rng=rng,
            settle_time=100_000.0,
            max_recovery_time=0.5,  # absurdly small: recovery must fail
        )
        # Either the burst happened to land correct (possible but
        # unlikely) or the record reports non-recovery.
        record = report.records[0]
        assert record.recovered == (record.recovery_time == record.recovery_time)

    def test_settle_failure_raises(self):
        protocol = SilentNStateSSR(8)
        rng = make_rng(6, "recovery")
        with pytest.raises(RuntimeError):
            measure_recovery(
                protocol,
                FaultSchedule([FaultBurst(at=1.0, agents=1)]),
                rng=rng,
                initial_states=protocol.worst_case_configuration(),
                settle_time=0.5,  # cannot settle this fast
                max_recovery_time=10.0,
            )
