"""Tests for repro.core.monitors.

The crucial property is that ConvergenceMonitor's O(1)-per-step
bookkeeping always agrees with a from-scratch recomputation -- checked
here on random runs of a real protocol.
"""

import random

from repro.core.configuration import ranks_are_permutation
from repro.core.monitors import ChangeCounter, ConvergenceMonitor, TraceRecorder
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR


class TestConvergenceMonitorIncremental:
    def test_agrees_with_recomputation_on_random_run(self, rng):
        n = 6
        protocol = SilentNStateSSR(n)
        monitor = protocol.convergence_monitor()
        states = [rng.randrange(n) for _ in range(n)]
        sim = Simulation(protocol, states, rng=rng, monitors=[monitor])
        for _ in range(400):
            sim.step()
            expected = ranks_are_permutation(
                [protocol.rank_of(s) for s in sim.states], n
            )
            assert monitor.correct == expected

    def test_initially_correct_configuration(self, rng):
        protocol = SilentNStateSSR(4)
        monitor = protocol.convergence_monitor()
        Simulation(protocol, [0, 1, 2, 3], rng=rng, monitors=[monitor])
        assert monitor.correct
        assert monitor.streak_start == 0

    def test_streak_start_records_when_correct_began(self, rng):
        n = 5
        protocol = SilentNStateSSR(n)
        monitor = protocol.convergence_monitor()
        sim = Simulation(
            protocol, [0, 0, 1, 2, 3], rng=rng, monitors=[monitor]
        )
        while not monitor.correct:
            sim.step()
        assert monitor.streak_start == sim.interactions
        streak_began = sim.interactions
        sim.run(50)  # CIW correct configurations are stable
        assert monitor.correct
        assert monitor.streak_start == streak_began
        assert monitor.correct_streak(sim.interactions) == sim.interactions - streak_began

    def test_regressions_counted(self):
        # Drive the monitor by hand: correct -> broken -> correct.
        monitor = ConvergenceMonitor(2, rank_of=lambda s: s)
        monitor.on_start([1, 2])
        assert monitor.correct and monitor.regressions == 0
        monitor.before_step(1, 0, 1, 1, 2)
        monitor.after_step(1, 0, 1, 2, 2)  # now [2, 2]: broken
        assert not monitor.correct
        assert monitor.regressions == 1
        monitor.before_step(2, 0, 1, 2, 2)
        monitor.after_step(2, 0, 1, 1, 2)  # back to [1, 2]
        assert monitor.correct
        assert monitor.streak_start == 2

    def test_correct_streak_zero_when_incorrect(self):
        monitor = ConvergenceMonitor(2, rank_of=lambda s: s)
        monitor.on_start([1, 1])
        assert monitor.correct_streak(100) == 0

    def test_out_of_range_ranks_ignored(self):
        monitor = ConvergenceMonitor(2, rank_of=lambda s: s)
        monitor.on_start([1, 99])  # 99 outside 1..2: not counted
        assert not monitor.correct


class TestChangeCounter:
    def test_counts_only_real_changes(self, rng):
        protocol = SilentNStateSSR(3)
        counter = ChangeCounter(protocol.summarize)
        sim = Simulation(protocol, [1, 1, 2], rng=rng, monitors=[counter])
        # Find the colliding pair deterministically.
        from repro.core.scheduler import ScriptedScheduler

        sim.scheduler = ScriptedScheduler([(0, 2), (0, 1)])
        sim.step()  # (1, 2): null
        assert counter.changes == 0
        sim.step()  # (1, 1): responder bumps
        assert counter.changes == 1
        assert counter.last_change_step == 2


class TestTraceRecorder:
    def test_records_human_readable_lines(self, rng):
        protocol = SilentNStateSSR(3)
        recorder = TraceRecorder(protocol.describe)
        from repro.core.scheduler import ScriptedScheduler

        sim = Simulation(
            protocol,
            [1, 1, 0],
            rng=rng,
            scheduler=ScriptedScheduler([(0, 1)]),
            monitors=[recorder],
        )
        sim.step()
        assert len(recorder.entries) == 1
        assert "rank=1 | rank=1" in recorder.entries[0]
        assert "rank=1 | rank=2" in recorder.entries[0]
