"""Tests for the observability layer (:mod:`repro.obs`).

The contracts under test: the recorder taxonomy reconciles (every
event is counted exactly once in the aggregates), traces round-trip
through the JSONL schema, the ambient-recorder context wires both
engines and the fault machinery without being threaded through call
signatures -- and, most importantly, recording is *inert by default*:
with no recorder installed the engines register no hooks and produce
bit-identical runs.
"""

import json
import math
import random

import pytest

from repro.core.countsim import CountSimulation
from repro.core.faults import FaultSchedule, measure_recovery
from repro.core.parallel import ParallelTrialRunner
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.obs import (
    MetricsRecorder,
    SampledMetricsMonitor,
    TRACE_SCHEMA_VERSION,
    TraceWriter,
    current_recorder,
    percentile,
    read_trace,
    recording,
    validate_trace,
)
from repro.obs.tail import available_series, render_trace, sample_series
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentSSR


def draw_uniform(rng: random.Random) -> float:
    return rng.random()


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_singleton(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 100.0) == 7.0

    def test_linear_interpolation_matches_numpy_method(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == 2.5
        assert percentile(values, 25.0) == 1.75
        assert percentile(values, 100.0) == 4.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestMetricsRecorder:
    def test_invalid_sample_every(self):
        with pytest.raises(ValueError):
            MetricsRecorder(sample_every=0)

    def test_samples_carry_gauges(self):
        recorder = MetricsRecorder()
        recorder.sample(t=1.0, leaders=1)
        recorder.set_gauge("fault_backlog", 2.0)
        recorder.sample(t=2.0, leaders=1)
        assert "fault_backlog" not in recorder.samples[0]
        assert recorder.samples[1]["fault_backlog"] == 2.0

    def test_inc_gauge(self):
        recorder = MetricsRecorder()
        assert recorder.inc_gauge("fault_backlog") == 1.0
        assert recorder.inc_gauge("fault_backlog", -1.0) == 0.0

    def test_event_counts_reconcile_with_event_stream(self):
        recorder = MetricsRecorder()
        recorder.event("strike", agents=4)
        recorder.event("recovery", recovery_time=3.0)
        recorder.event("strike", agents=2)
        aggregates = recorder.aggregates()
        assert aggregates["events"] == len(recorder.events) == 3
        assert aggregates["event_counts"] == {"strike": 2, "recovery": 1}
        assert sum(aggregates["event_counts"].values()) == aggregates["events"]
        assert [e["agents"] for e in recorder.events_of("strike")] == [4, 2]

    def test_recovery_time_distribution(self):
        recorder = MetricsRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.event("recovery", recovery_time=value)
        distribution = recorder.aggregates()["recovery_time"]
        assert distribution["count"] == 3
        assert distribution["mean"] == 2.0
        assert distribution["p50"] == 2.0
        assert distribution["min"] == 1.0 and distribution["max"] == 3.0

    def test_throughput_aggregate(self):
        recorder = MetricsRecorder()
        recorder.count_interactions(1000, 0.5)
        recorder.count_interactions(1000, 0.5)
        throughput = recorder.aggregates()["throughput"]
        assert throughput["interactions"] == 2000
        assert throughput["interactions_per_second"] == pytest.approx(2000.0)

    def test_phase_timer_accumulates(self):
        recorder = MetricsRecorder()
        with recorder.phase("settle"):
            pass
        with recorder.phase("settle"):
            pass
        assert recorder.phase_seconds["settle"] >= 0.0
        assert "settle" in recorder.aggregates()["phase_seconds"]

    def test_to_json_is_json_serializable(self):
        recorder = MetricsRecorder()
        recorder.sample(t=0.5, leaders=1)
        recorder.event("convergence", t=0.5)
        recorder.add_stage_time("countsim.transition", 0.01)
        payload = json.dumps(recorder.to_json())
        assert "countsim.transition" in payload

    def test_write(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        recorder = MetricsRecorder()
        recorder.event("strike", agents=1)
        recorder.write(path)
        with open(path, encoding="utf8") as handle:
            loaded = json.load(handle)
        assert loaded["schema_version"] == 1
        assert loaded["aggregates"]["event_counts"] == {"strike": 1}


class TestTraceWriter:
    def test_round_trip_and_validation(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path) as trace:
            trace.write("sample", {"t": 1.0, "leaders": 1})
            trace.write("event", {"kind": "strike", "agents": 2})
            trace.write("aggregate", {"events": 1})
        records = read_trace(path)
        assert [r["type"] for r in records] == [
            "header", "sample", "event", "aggregate",
        ]
        assert records[0]["schema_version"] == TRACE_SCHEMA_VERSION
        assert all(r["v"] == TRACE_SCHEMA_VERSION for r in records)
        assert validate_trace(path) == []

    def test_recorder_mirrors_into_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path) as trace:
            recorder = MetricsRecorder(trace=trace)
            recorder.sample(t=1.0, leaders=1)
            recorder.event("recovery", recovery_time=2.0)
        records = read_trace(path)
        assert sum(1 for r in records if r["type"] == "sample") == 1
        assert sum(1 for r in records if r["type"] == "event") == 1

    def test_unknown_record_type_rejected(self, tmp_path):
        with TraceWriter(str(tmp_path / "t.jsonl")) as trace:
            with pytest.raises(ValueError):
                trace.write("bogus", {})

    def test_write_after_close_rejected(self, tmp_path):
        trace = TraceWriter(str(tmp_path / "t.jsonl"))
        trace.close()
        trace.close()  # idempotent
        with pytest.raises(ValueError):
            trace.write("event", {"kind": "strike"})

    def test_truncated_tail_tolerated_by_reader(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path) as trace:
            trace.write("sample", {"t": 1.0})
        with open(path, "a", encoding="utf8") as handle:
            handle.write('{"v": 1, "type": "sam')  # killed mid-line
        records = read_trace(path)  # recovers the intact prefix
        assert [r["type"] for r in records] == ["header", "sample"]
        assert any("unparseable" in p for p in validate_trace(path))

    def test_validation_catches_schema_violations(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w", encoding="utf8") as handle:
            handle.write('{"v": 1, "type": "sample"}\n')  # no header, no t
        problems = validate_trace(path)
        assert any("header" in p for p in problems)
        assert any("numeric 't'" in p for p in problems)

    def test_empty_trace_is_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert validate_trace(str(path)) == ["trace is empty (no records at all)"]


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_recorder() is None

    def test_recording_installs_and_restores(self):
        recorder = MetricsRecorder()
        with recording(recorder):
            assert current_recorder() is recorder
        assert current_recorder() is None

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with recording(MetricsRecorder()):
                raise RuntimeError("boom")
        assert current_recorder() is None

    def test_recording_is_thread_scoped(self):
        """Two threads inside recording scopes simultaneously each see
        their own recorder -- the ContextVar contract that lets the
        service run concurrent jobs without cross-wiring streams."""
        import threading

        barrier = threading.Barrier(2, timeout=10)
        isolated = {}

        def body(name):
            recorder = MetricsRecorder()
            with recording(recorder):
                barrier.wait()  # both scopes active at once
                isolated[name] = current_recorder() is recorder
                barrier.wait()

        threads = [threading.Thread(target=body, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert isolated == {0: True, 1: True}
        assert current_recorder() is None

    def test_recording_is_task_scoped(self):
        """Interleaved asyncio tasks each see their own recorder."""
        import asyncio

        async def main():
            seen = {}

            async def task(name):
                recorder = MetricsRecorder()
                with recording(recorder):
                    await asyncio.sleep(0.01)  # yield to the sibling
                    seen[name] = current_recorder() is recorder
                return recorder

            await asyncio.gather(task("a"), task("b"))
            return seen

        assert asyncio.run(main()) == {"a": True, "b": True}

    def test_new_thread_does_not_inherit_recorder(self):
        """A thread spawned inside a recording scope starts clean --
        explicit propagation (contextvars.copy_context) is the only
        way a recorder crosses a thread boundary."""
        import threading

        leaked = {}
        with recording(MetricsRecorder()):
            thread = threading.Thread(
                target=lambda: leaked.setdefault("r", current_recorder())
            )
            thread.start()
            thread.join(timeout=10)
        assert leaked["r"] is None

    def test_copy_context_propagates_recorder_into_thread(self):
        """The pattern the job manager uses around run_in_executor."""
        import contextvars
        import threading

        recorder = MetricsRecorder()
        seen = {}
        with recording(recorder):
            context = contextvars.copy_context()
        thread = threading.Thread(
            target=lambda: seen.setdefault(
                "r", context.run(current_recorder)
            )
        )
        thread.start()
        thread.join(timeout=10)
        assert seen["r"] is recorder
        assert current_recorder() is None


class TestEngineWiring:
    """Recording must be inert when off and invisible to RNG when on."""

    def test_engines_unhooked_without_recorder(self):
        protocol = SilentNStateSSR(8)
        generic = Simulation(protocol, list(range(8)), rng=make_rng(1, "g"))
        count = CountSimulation(protocol, list(range(8)), rng=make_rng(1, "c"))
        assert generic._obs is None
        assert count._obs is None and not count._profile

    def test_count_engine_run_is_bit_identical_under_recording(self):
        protocol = SilentNStateSSR(16)
        states = protocol.worst_case_configuration()

        def converge(recorder):
            sim = CountSimulation(
                protocol, states, rng=make_rng(2, "bits"), recorder=recorder
            )
            sim.run_until_silent()
            return sim.interactions, sim.events, sim.occupancy()

        recorder = MetricsRecorder(sample_every=64)
        assert converge(None) == converge(recorder)
        assert recorder.samples  # it really was recording

    def test_count_engine_samples_and_convergence_event(self):
        protocol = SilentNStateSSR(16)
        recorder = MetricsRecorder(sample_every=32)
        sim = CountSimulation(
            protocol,
            protocol.worst_case_configuration(),
            rng=make_rng(3, "count-obs"),
            recorder=recorder,
        )
        sim.run_until_silent()
        assert recorder.samples
        sample = recorder.samples[-1]
        assert sample["engine"] == "count"
        assert sample["leaders"] == 1
        # The last sample may precede the final transition; the O(1)
        # occupied counter must still agree with a fresh O(k) count.
        assert 1 <= sample["distinct_states"] <= 16
        assert sim._occupied == len(sim.occupancy()) == 16
        assert 0.0 <= sample["null_fraction"] <= 1.0
        convergences = recorder.events_of("convergence")
        assert convergences and convergences[-1]["engine"] == "count"
        # Throughput was credited by the run wrapper.
        assert recorder.interactions == sim.interactions

    def test_generic_engine_samples_via_monitor(self):
        protocol = SilentNStateSSR(8)
        recorder = MetricsRecorder(sample_every=16)
        monitor = protocol.convergence_monitor()
        monitor.recorder = recorder
        sim = Simulation(
            protocol,
            protocol.worst_case_configuration(),
            rng=make_rng(4, "gen-obs"),
            monitors=[monitor, SampledMetricsMonitor(recorder, monitor, 8)],
            recorder=recorder,
        )
        sim.run(2_000)
        assert recorder.samples
        assert recorder.samples[-1]["engine"] == "generic"
        assert recorder.events_of("convergence")
        assert recorder.interactions == sim.interactions

    def test_initial_correct_state_emits_no_event(self):
        """Arming a monitor on an already-correct population is not a
        convergence -- fault surfaces re-arm after every strike."""
        protocol = SilentNStateSSR(8)
        recorder = MetricsRecorder()
        monitor = protocol.convergence_monitor()
        monitor.recorder = recorder
        Simulation(
            protocol, list(range(8)), rng=make_rng(5, "arm"), monitors=[monitor]
        )
        assert monitor.correct
        assert recorder.events == []

    def test_ambient_recorder_reaches_measure_recovery(self):
        protocol = OptimalSilentSSR(8)
        recorder = MetricsRecorder(sample_every=64)
        with recording(recorder):
            report = measure_recovery(
                protocol,
                FaultSchedule.periodic(period=50.0, agents=4, count=2),
                rng=make_rng(6, "obs-recovery"),
                settle_time=50_000.0,
                max_recovery_time=50_000.0,
            )
        assert all(record.recovered for record in report.records)
        strikes = recorder.events_of("strike")
        recoveries = recorder.events_of("recovery")
        assert len(strikes) == 2
        assert len(recoveries) == 2
        assert all("adversary" in event for event in strikes)
        # Events reconcile with the aggregates, and the recovery
        # distribution is built from exactly the recovery events.
        aggregates = recorder.aggregates()
        assert aggregates["recovery_time"]["count"] == len(recoveries)
        assert set(aggregates["event_counts"]) >= {"strike", "recovery"}
        # The fault backlog gauge returned to zero.
        assert recorder.gauges["fault_backlog"] == 0.0
        # Phases cover the settle/dwell/recover lifecycle.
        assert {"settle", "dwell", "recover"} <= set(recorder.phase_seconds)


class TestProfiling:
    def test_count_engine_stage_timers(self):
        protocol = SilentNStateSSR(16)
        recorder = MetricsRecorder(sample_every=64, profile=True)
        sim = CountSimulation(
            protocol,
            protocol.worst_case_configuration(),
            rng=make_rng(7, "prof"),
            recorder=recorder,
        )
        sim.run_until_silent()
        assert {"countsim.pair_sampling", "countsim.transition"} <= set(
            recorder.stage_seconds
        )
        assert all(seconds >= 0.0 for seconds in recorder.stage_seconds.values())

    def test_stage_timers_off_without_profile(self):
        protocol = SilentNStateSSR(16)
        recorder = MetricsRecorder(sample_every=64)
        sim = CountSimulation(
            protocol,
            protocol.worst_case_configuration(),
            rng=make_rng(7, "prof"),
            recorder=recorder,
        )
        sim.run_until_silent()
        assert recorder.stage_seconds == {}

    @pytest.mark.parametrize("workers", [1, 2])
    def test_runner_emits_trial_timings(self, workers):
        recorder = MetricsRecorder(profile=True)
        runner = ParallelTrialRunner(workers, recorder=recorder)
        results = runner.map_trials(
            draw_uniform, seed=30, labels=("prof",), trials=4
        )
        assert results == [make_rng(30, "prof", i).random() for i in range(4)]
        trials = recorder.events_of("trial")
        assert sorted(event["index"] for event in trials) == [0, 1, 2, 3]
        assert all(event["pooled"] == (workers > 1) for event in trials)
        assert all(event["wall_seconds"] >= 0.0 for event in trials)
        distribution = recorder.aggregates()["trial_wall_seconds"]
        assert distribution["count"] == 4

    def test_runner_emits_checkpoint_write_events(self, tmp_path):
        recorder = MetricsRecorder()
        runner = ParallelTrialRunner(
            checkpoint=str(tmp_path / "journal.pkl"), recorder=recorder
        )
        runner.map_trials(draw_uniform, seed=31, labels=("ck",), trials=3)
        writes = recorder.events_of("checkpoint-write")
        assert sorted(event["index"] for event in writes) == [0, 1, 2]


class TestTail:
    def _write_trace(self, path):
        with TraceWriter(path) as trace:
            recorder = MetricsRecorder(sample_every=32, trace=trace)
            sim = CountSimulation(
                SilentNStateSSR(16),
                SilentNStateSSR(16).worst_case_configuration(),
                rng=make_rng(8, "tail"),
                recorder=recorder,
            )
            sim.run_until_silent()
            trace.write("aggregate", recorder.aggregates())

    def test_series_extraction(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._write_trace(path)
        records = read_trace(path)
        series = available_series(records)
        assert "leaders" in series and "distinct_states" in series
        points = sample_series(records, "leaders")
        assert points and all(t >= 0.0 for t, _ in points)
        # Ranked protocols always have >= 1 agent claiming rank 1, and
        # t is monotone along the trace.
        assert all(value >= 1.0 for _, value in points)
        assert [t for t, _ in points] == sorted(t for t, _ in points)

    def test_render_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._write_trace(path)
        rendered = render_trace(path, width=40, height=6)
        assert "leaders vs parallel time" in rendered
        assert "events:" in rendered
        assert "aggregate:" in rendered

    def test_render_missing_series(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._write_trace(path)
        rendered = render_trace(path, series=["nonexistent"])
        assert "no sampled points" in rendered
