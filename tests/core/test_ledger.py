"""Tests for the run ledger (:mod:`repro.obs.ledger`).

The contracts: entries are stamped with the provenance triple and
appended in one write (never a torn record from *this* writer), a torn
tail left by a killed writer is healed at the next append and skipped
on read, and appending never raises -- the ledger observes runs, it
must not abort them.
"""

import json
import os

import pytest

from repro.obs import (
    LEDGER_SCHEMA_VERSION,
    MetricsRecorder,
    append_entry,
    iter_ledger,
    make_entry,
    read_ledger,
    record_invocation,
)
from repro.obs.ledger import _needs_newline_repair


class TestMakeEntry:
    def test_stamped_with_provenance_triple(self):
        entry = make_entry("run", experiment="figure2", seed=7)
        assert entry["schema_version"] == LEDGER_SCHEMA_VERSION
        assert entry["kind"] == "run"
        assert "created_unix" in entry
        # git_sha may be None-dropped outside a checkout; inside this
        # repo it must be the 40-hex HEAD.
        if "git_sha" in entry:
            assert len(entry["git_sha"]) == 40
        assert entry["experiment"] == "figure2"
        assert entry["seed"] == 7

    def test_none_fields_dropped(self):
        entry = make_entry("chaos", engine=None, n=64)
        assert "engine" not in entry
        assert entry["n"] == 64

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown ledger entry kind"):
            make_entry("deploy")


class TestAppendAtomicity:
    def test_append_one_line_per_entry(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        for index in range(3):
            assert append_entry(path, make_entry("run", index=index))
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        assert [json.loads(line)["index"] for line in lines] == [0, 1, 2]

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "reports" / "ledger" / "ledger.jsonl")
        assert append_entry(path, make_entry("run"))
        assert os.path.exists(path)

    def test_torn_tail_repaired_on_next_append(self, tmp_path):
        """A killed writer's half-line never corrupts the next entry."""
        path = str(tmp_path / "ledger.jsonl")
        append_entry(path, make_entry("run", index=0))
        # Simulate a crash mid-append by an out-of-band writer: the
        # file ends inside a record, no trailing newline.
        with open(path, "a") as handle:
            handle.write('{"kind": "run", "trunc')
        assert _needs_newline_repair(path)
        append_entry(path, make_entry("run", index=1))
        entries = read_ledger(path)
        # The torn line is lost, both healthy entries survive.
        assert [entry.get("index") for entry in entries] == [0, 1]

    def test_unserializable_entry_degrades_to_warning(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        # default=str handles most objects; force a failure with a
        # self-referencing structure json cannot serialize.
        loop = []
        loop.append(loop)
        assert append_entry(path, {"kind": "run", "bad": loop}) is False
        assert not os.path.exists(path)

    def test_unwritable_path_degrades_to_warning(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        path = str(target / "ledger.jsonl")  # parent is a file
        assert append_entry(path, make_entry("run")) is False


class TestIterLedger:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert read_ledger(str(tmp_path / "absent.jsonl")) == []

    def test_damaged_lines_skipped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_entry(path, make_entry("run", index=0))
        with open(path, "a") as handle:
            handle.write("not json\n\n")
        append_entry(path, make_entry("run", index=1))
        assert [entry["index"] for entry in iter_ledger(path)] == [0, 1]

    def test_streaming_order_is_oldest_first(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        for index in range(10):
            append_entry(path, make_entry("bench", index=index))
        assert [entry["index"] for entry in iter_ledger(path)] == list(range(10))


class TestRecordInvocation:
    def test_appends_and_returns_entry(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        entry = record_invocation("run", path=path, experiment="figure1", seed=3)
        assert entry["experiment"] == "figure1"
        assert read_ledger(path)[0]["experiment"] == "figure1"

    def test_recorder_aggregates_ride_along(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        recorder = MetricsRecorder(sample_every=16)
        recorder.event("convergence", t=1.5)
        record_invocation("chaos", path=path, recorder=recorder, n=32)
        entry = read_ledger(path)[0]
        assert entry["n"] == 32
        assert "aggregates" in entry
        assert entry["aggregates"]["event_counts"]["convergence"] == 1


class TestServiceEntryKinds:
    def test_job_and_serve_kinds_accepted(self):
        assert make_entry("job", job_id="job-abc", state="done")["kind"] == "job"
        assert make_entry("serve", port=8642)["kind"] == "serve"


class TestAppendDegradation:
    """ENOSPC/EIO policy: one warning per path, in-memory continuation,
    the path reported via degraded_paths() until an append succeeds."""

    def _fail_writes_to(self, monkeypatch, path):
        import errno

        real_write = os.write

        def failing_write(fd, data):
            try:
                target = os.readlink(f"/proc/self/fd/{fd}")
            except OSError:
                target = ""
            if target == path:
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", failing_write)

    def test_full_disk_warns_once_and_self_clears(
        self, tmp_path, monkeypatch, caplog
    ):
        from repro.obs.ledger import degraded_paths

        path = str(tmp_path / "ledger.jsonl")
        self._fail_writes_to(monkeypatch, path)
        with caplog.at_level("WARNING"):
            for index in range(4):
                assert append_entry(path, make_entry("run", index=index)) is False
        assert path in degraded_paths()
        warned = [
            record for record in caplog.records if "write failed" in record.message
        ]
        assert len(warned) == 1  # four failures, one warning
        monkeypatch.undo()
        # The disk recovers: the next append succeeds and the degraded
        # flag clears itself.
        assert append_entry(path, make_entry("run", index=99))
        assert path not in degraded_paths()
        assert [entry["index"] for entry in read_ledger(path)] == [99]
