"""Tests for repro.core.simulation and the monitor callback contract."""

import pytest

from repro.core.errors import ConfigurationError, SimulationLimitError
from repro.core.monitors import Monitor
from repro.core.scheduler import ScriptedScheduler
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR


class RecordingMonitor(Monitor):
    def __init__(self):
        self.events = []

    def on_start(self, states):
        self.events.append(("start", list(states)))

    def before_step(self, step, i, j, state_i, state_j):
        self.events.append(("before", step, i, j, state_i, state_j))

    def after_step(self, step, i, j, state_i, state_j):
        self.events.append(("after", step, i, j, state_i, state_j))


class TestSimulationBasics:
    def test_wrong_population_size_rejected(self, rng):
        protocol = SilentNStateSSR(4)
        with pytest.raises(ConfigurationError):
            Simulation(protocol, [0, 1], rng=rng)

    def test_default_initial_configuration(self, rng):
        protocol = SilentNStateSSR(4)
        sim = Simulation(protocol, rng=rng)
        assert sim.states == [0, 0, 0, 0]

    def test_step_applies_transition(self, rng):
        protocol = SilentNStateSSR(3)
        sim = Simulation(
            protocol, [1, 1, 2], rng=rng, scheduler=ScriptedScheduler([(0, 1)])
        )
        sim.step()
        assert sim.states == [1, 2, 2]
        assert sim.interactions == 1

    def test_parallel_time(self, rng):
        protocol = SilentNStateSSR(4)
        sim = Simulation(protocol, rng=rng)
        sim.run(10)
        assert sim.parallel_time == pytest.approx(2.5)

    def test_run_stops_at_script_end(self, rng):
        protocol = SilentNStateSSR(3)
        sim = Simulation(
            protocol, [0, 1, 2], rng=rng, scheduler=ScriptedScheduler([(0, 1), (1, 2)])
        )
        sim.run(100)  # script has only 2 steps
        assert sim.interactions == 2


class TestRunUntil:
    def test_predicate_already_true(self, rng):
        protocol = SilentNStateSSR(3)
        sim = Simulation(protocol, [0, 1, 2], rng=rng)
        assert sim.run_until(lambda s: True, max_interactions=10) == 0

    def test_default_check_every_is_population_scaled(self, rng):
        # n = 3, so the default polls every 3 interactions: a predicate
        # first true at interaction 1 is observed at the next boundary.
        protocol = SilentNStateSSR(3)
        sim = Simulation(protocol, rng=rng)
        count = sim.run_until(lambda s: s.interactions >= 1, max_interactions=100)
        assert count == 3

    def test_runs_until_predicate(self, rng):
        protocol = SilentNStateSSR(3)
        sim = Simulation(protocol, rng=rng)
        count = sim.run_until(
            lambda s: s.interactions >= 7, max_interactions=100, check_every=1
        )
        assert count == 7

    def test_budget_exhaustion_raises(self, rng):
        protocol = SilentNStateSSR(3)
        sim = Simulation(protocol, rng=rng)
        with pytest.raises(SimulationLimitError) as info:
            sim.run_until(lambda s: False, max_interactions=25, check_every=10)
        assert info.value.interactions >= 25

    def test_invalid_check_every(self, rng):
        protocol = SilentNStateSSR(3)
        sim = Simulation(protocol, rng=rng)
        with pytest.raises(ValueError):
            sim.run_until(lambda s: True, max_interactions=10, check_every=0)


class TestMonitorContract:
    def test_callbacks_in_order_with_pre_and_post_states(self, rng):
        protocol = SilentNStateSSR(3)
        monitor = RecordingMonitor()
        sim = Simulation(
            protocol,
            [1, 1, 0],
            rng=rng,
            scheduler=ScriptedScheduler([(0, 1)]),
            monitors=[monitor],
        )
        sim.step()
        assert monitor.events[0] == ("start", [1, 1, 0])
        assert monitor.events[1] == ("before", 0, 0, 1, 1, 1)
        assert monitor.events[2] == ("after", 1, 0, 1, 1, 2)

    def test_multiple_monitors_all_notified(self, rng):
        protocol = SilentNStateSSR(3)
        monitors = [RecordingMonitor(), RecordingMonitor()]
        sim = Simulation(protocol, rng=rng, monitors=monitors)
        sim.run(3)
        assert len(monitors[0].events) == len(monitors[1].events) == 1 + 2 * 3
