"""Tests for ``repro tail --follow`` (:func:`repro.obs.tail.follow_trace`).

Contracts: records already on disk replay first, appended records
stream as they land, a partial line (a write in progress) is never
parsed until its newline arrives, truncation or replacement of the
file reopens it from the top, and the ``stop`` callable ends the
otherwise-infinite iterator at the next idle poll.
"""

import json
import os

from repro.obs.tail import follow_trace, format_record


def write_lines(path, records, mode="a"):
    with open(path, mode, encoding="utf8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


class TestFollowTrace:
    def test_replays_then_streams_appends(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_lines(path, [{"type": "sample", "t": 0.0}], mode="w")
        gen = follow_trace(path, poll=0.01)
        assert next(gen) == {"type": "sample", "t": 0.0}
        write_lines(path, [{"type": "event", "kind": "convergence"}])
        assert next(gen)["kind"] == "convergence"
        gen.close()

    def test_partial_line_waits_for_newline(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_lines(path, [{"type": "sample", "t": 0.0}], mode="w")
        with open(path, "a", encoding="utf8") as handle:
            handle.write('{"type": "sample", ')  # torn write, no newline
        polls = []

        def stop():
            polls.append(1)
            return len(polls) >= 2

        records = list(follow_trace(path, poll=0.0, stop=stop))
        assert records == [{"type": "sample", "t": 0.0}]
        # Completing the line makes the record appear on a fresh follow.
        with open(path, "a", encoding="utf8") as handle:
            handle.write('"t": 1.0}\n')
        gen = follow_trace(path, poll=0.01)
        assert next(gen)["t"] == 0.0
        assert next(gen)["t"] == 1.0
        gen.close()

    def test_truncation_reopens_from_top(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_lines(path, [{"type": "sample", "t": 0.0},
                           {"type": "sample", "t": 1.0}], mode="w")
        gen = follow_trace(path, poll=0.01)
        assert next(gen)["t"] == 0.0
        assert next(gen)["t"] == 1.0
        # A restarted run recreates its trace: shorter file, new content.
        write_lines(path, [{"type": "sample", "t": 9.0}], mode="w")
        assert next(gen)["t"] == 9.0
        gen.close()

    def test_replacement_reopens_new_inode(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_lines(path, [{"type": "sample", "t": 0.0}], mode="w")
        gen = follow_trace(path, poll=0.01)
        assert next(gen)["t"] == 0.0
        fresh = str(tmp_path / "fresh.jsonl")
        # Same length as the original so only the inode check can
        # notice the swap.
        write_lines(fresh, [{"type": "sample", "t": 5.0}], mode="w")
        os.replace(fresh, path)
        assert next(gen)["t"] == 5.0
        gen.close()

    def test_missing_file_polls_until_it_exists(self, tmp_path):
        path = str(tmp_path / "late.jsonl")
        appeared = []

        def stop():
            if not appeared:
                write_lines(path, [{"type": "sample", "t": 3.0}], mode="w")
                appeared.append(1)
                return False
            return True

        gen = follow_trace(path, poll=0.0, stop=stop)
        assert next(gen)["t"] == 3.0
        gen.close()

    def test_unparseable_line_skipped(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w", encoding="utf8") as handle:
            handle.write("{torn\n")
            handle.write('{"type": "sample", "t": 2.0}\n')
        gen = follow_trace(path, poll=0.01)
        assert next(gen)["t"] == 2.0
        gen.close()

    def test_stop_ends_iteration(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_lines(path, [{"type": "sample", "t": 0.0}], mode="w")
        records = list(follow_trace(path, poll=0.0, stop=lambda: True))
        assert records == [{"type": "sample", "t": 0.0}]


class TestFormatRecord:
    def test_sample_line(self):
        line = format_record({"type": "sample", "t": 1.5, "leaders": 2,
                              "rank_coverage": 0.75, "v": 1})
        assert line.startswith("sample t=1.5")
        assert "leaders=2" in line
        assert "v=1" not in line

    def test_event_line(self):
        line = format_record({"type": "event", "kind": "convergence",
                              "t": 4.0, "v": 1})
        assert line.startswith("event convergence")
        assert "t=4.0" in line

    def test_span_lines(self):
        assert format_record(
            {"type": "span", "op": "begin", "kind": "trial", "id": "7:x:0",
             "parent": "job-1/a1"}
        ) == "span begin trial 7:x:0  parent=job-1/a1"
        assert format_record(
            {"type": "span", "op": "end", "kind": "trial", "id": "7:x:0",
             "status": "ok"}
        ) == "span end trial 7:x:0  status=ok"

    def test_unknown_record_falls_back_to_json(self):
        assert format_record({"type": "header", "v": 1}) == \
            '{"type": "header", "v": 1}'
