"""Tests for the array-based Optimal-Silent-SSR simulator.

The load-bearing test is distributional parity with the generic engine:
same protocol, same start, statistically indistinguishable
stabilization times.
"""

import statistics

import pytest

from repro.core.fastpath_optimal_silent import (
    RESETTING,
    SETTLED,
    UNSETTLED,
    OptimalSilentFastSim,
)
from repro.core.rng import make_rng
from repro.experiments.common import measure_convergence
from repro.protocols.optimal_silent import OptimalSilentSSR, Role


class TestConstruction:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            OptimalSilentFastSim(1, make_rng(0, "x"))

    def test_duplicate_rank_start_tracks_counts(self):
        sim = OptimalSilentFastSim(6, make_rng(0, "x"))
        sim.duplicate_rank_start()
        assert not sim.correct
        assert sorted(sim.rank) == [1, 1, 2, 3, 4, 5]

    def test_from_states_round_trip(self):
        protocol = OptimalSilentSSR(8)
        rng = make_rng(1, "enc")
        states = protocol.random_configuration(rng)
        sim = OptimalSilentFastSim.from_states(states, rng, protocol.params)
        for index, agent in enumerate(states):
            if agent.role is Role.SETTLED:
                assert sim.role[index] == SETTLED
                assert sim.rank[index] == agent.rank
            elif agent.role is Role.UNSETTLED:
                assert sim.role[index] == UNSETTLED
                assert sim.errorcount[index] == agent.errorcount
            else:
                assert sim.role[index] == RESETTING
                assert sim.resetcount[index] == agent.resetcount

    def test_correct_flag_matches_protocol_predicate(self):
        protocol = OptimalSilentSSR(6)
        rng = make_rng(2, "enc")
        states = protocol.ranked_configuration()
        sim = OptimalSilentFastSim.from_states(states, rng, protocol.params)
        assert sim.correct


class TestConvergence:
    @pytest.mark.parametrize("start", ["duplicate", "random", "triggered"])
    def test_converges(self, start):
        sim = OptimalSilentFastSim(16, make_rng(3, "conv", start))
        if start == "duplicate":
            sim.duplicate_rank_start()
        elif start == "random":
            sim.random_start()
        else:
            sim.all_triggered_start()
        sim.run_to_convergence(max_interactions=20_000_000)
        assert sim.correct
        assert sorted(sim.rank) == list(range(1, 17))

    def test_budget_guard(self):
        sim = OptimalSilentFastSim(16, make_rng(4, "budget"))
        sim.duplicate_rank_start()
        with pytest.raises(RuntimeError):
            sim.run_to_convergence(max_interactions=3)

    def test_correct_start_is_instant(self):
        protocol = OptimalSilentSSR(8)
        sim = OptimalSilentFastSim.from_states(
            protocol.ranked_configuration(), make_rng(5, "inst"), protocol.params
        )
        assert sim.run_to_convergence(max_interactions=10) == 0


@pytest.mark.slow
class TestParityWithGenericEngine:
    """Stabilization-time distributions must match the reference engine."""

    N = 8
    TRIALS = 250

    def fast_times(self):
        times = []
        for trial in range(self.TRIALS):
            sim = OptimalSilentFastSim(self.N, make_rng(7, "fastpar", trial))
            sim.duplicate_rank_start()
            times.append(
                sim.run_to_convergence(max_interactions=50_000_000) / self.N
            )
        return times

    def generic_times(self):
        times = []
        for trial in range(self.TRIALS):
            protocol = OptimalSilentSSR(self.N)
            rng = make_rng(8, "genpar", trial)
            # Pin the generic engine: this test cross-validates the fast
            # array simulator against the reference agent-array engine
            # (countsim has its own equivalence suite in test_countsim).
            outcome = measure_convergence(
                protocol,
                protocol.duplicate_rank_configuration(rank=1),
                rng=rng,
                max_time=500_000.0,
                engine="generic",
            )
            assert outcome.converged
            times.append(outcome.convergence_time)
        return times

    def test_means_and_spread_match(self):
        fast = self.fast_times()
        generic = self.generic_times()
        mean_fast = statistics.mean(fast)
        mean_generic = statistics.mean(generic)
        assert mean_fast == pytest.approx(mean_generic, rel=0.12)
        # Same order of dispersion, not just the same mean.
        assert statistics.median(fast) == pytest.approx(
            statistics.median(generic), rel=0.2
        )
