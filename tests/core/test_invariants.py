"""Tests for the runtime invariant checkers.

The main payoff: run every protocol from clean *and* adversarial starts
with a strict InvariantMonitor attached and assert the protocol's own
writes never leave the declared state space.
"""

import pytest

from repro.core.invariants import (
    InvariantMonitor,
    InvariantViolation,
    check_configuration,
    check_optimal_silent,
    check_sublinear,
    invariant_for,
)
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentAgent, OptimalSilentSSR, Role
from repro.protocols.parameters import calibrated_reset_log_delay
from repro.protocols.propagate_reset import ResetTimingProtocol
from repro.protocols.sublinear.history_tree import HistoryTree
from repro.protocols.sublinear.protocol import (
    SubRole,
    SublinearAgent,
    SublinearTimeSSR,
)
from repro.protocols.sync_dictionary import SyncDictionarySSR


class TestCheckers:
    def test_resolution(self):
        # Resolution is schema-driven: every registered protocol gets the
        # generic schema-validating checker, and subclasses resolve via
        # the registry's MRO walk.
        assert invariant_for(SilentNStateSSR(4)).__name__ == "check_schema"
        assert invariant_for(OptimalSilentSSR(4)).__name__ == "check_schema"
        assert invariant_for(SublinearTimeSSR(4, h=1)).__name__ == "check_schema"
        with pytest.raises(KeyError):

            class Foreign(SilentNStateSSR):
                pass

            # Subclass still resolves (isinstance); a truly foreign type fails.
            from repro.core.protocol import PopulationProtocol

            class Alien(PopulationProtocol):
                def transition(self, a, b, rng):
                    return a, b

                def initial_state(self, rng):
                    return 0

                def random_state(self, rng):
                    return 0

                def is_correct(self, states):
                    return True

                def summarize(self, state):
                    return state

            invariant_for(Alien(2))

    def test_optimal_silent_flags_leaked_fields(self):
        protocol = OptimalSilentSSR(6)
        bad = OptimalSilentAgent(role=Role.UNSETTLED, errorcount=5, rank=3)
        problems = check_optimal_silent(protocol, bad)
        assert any("leaked" in p for p in problems)

    def test_optimal_silent_flags_out_of_range_rank(self):
        protocol = OptimalSilentSSR(6)
        bad = OptimalSilentAgent(role=Role.SETTLED, rank=7)
        assert check_optimal_silent(protocol, bad)

    def test_sublinear_flags_deep_tree(self):
        protocol = SublinearTimeSSR(4, h=1)
        tree = HistoryTree.singleton("0" * 6)
        child = HistoryTree.singleton("1" * 6)
        grandchild = HistoryTree.singleton("10" * 3)
        child.graft(grandchild, sync=1, expires=1)
        tree.graft(child, sync=1, expires=1)
        bad = SublinearAgent(
            role=SubRole.COLLECTING,
            name="0" * 6,
            roster=frozenset(("0" * 6,)),
            tree=tree,
        )
        problems = check_sublinear(protocol, bad)
        assert any("depth" in p for p in problems)

    def test_sublinear_flags_mismatched_root(self):
        protocol = SublinearTimeSSR(4, h=1)
        bad = SublinearAgent(
            role=SubRole.COLLECTING,
            name="0" * 6,
            roster=frozenset(("0" * 6,)),
            tree=HistoryTree.singleton("1" * 6),
        )
        assert any("root" in p for p in check_sublinear(protocol, bad))

    def test_check_configuration_prefixes_agent_index(self):
        protocol = SilentNStateSSR(3)
        problems = check_configuration(protocol, [0, 99, 1])
        assert problems == ["agent 1: rank 99 outside 0..2"]


class TestInvariantMonitor:
    def test_strict_monitor_raises(self, rng):
        protocol = SilentNStateSSR(3)

        class Broken(SilentNStateSSR):
            def transition(self, a, b, rng):
                return a, 99  # out of domain

        broken = Broken(3)
        monitor = InvariantMonitor(broken)
        sim = Simulation(broken, [0, 1, 2], rng=rng, monitors=[monitor])
        with pytest.raises(InvariantViolation):
            sim.run(10)

    def test_lenient_monitor_collects(self, rng):
        class Broken(SilentNStateSSR):
            def transition(self, a, b, rng):
                return a, 99

        broken = Broken(3)
        monitor = InvariantMonitor(broken, strict=False)
        sim = Simulation(broken, [0, 1, 2], rng=rng, monitors=[monitor])
        sim.run(5)
        assert len(monitor.violations) >= 5

    def test_adversarial_start_not_flagged(self, rng):
        # Initial garbage is allowed; only the protocol's writes count.
        protocol = OptimalSilentSSR(6)
        bad_start = [
            OptimalSilentAgent(role=Role.UNSETTLED, errorcount=5, rank=3)
            for _ in range(6)
        ]
        monitor = InvariantMonitor(protocol)
        Simulation(protocol, bad_start, rng=rng, monitors=[monitor])  # on_start only


PROTOCOLS = [
    ("ciw", lambda: SilentNStateSSR(8), 4000),
    ("optimal-silent", lambda: OptimalSilentSSR(8), 30_000),
    ("sublinear-h0", lambda: SublinearTimeSSR(6, h=0), 20_000),
    ("sublinear-h1", lambda: SublinearTimeSSR(6, h=1), 20_000),
    ("sublinear-h2", lambda: SublinearTimeSSR(6, h=2), 12_000),
    ("sync-dict", lambda: SyncDictionarySSR(6), 20_000),
    ("reset-timing", lambda: ResetTimingProtocol(8, calibrated_reset_log_delay(8)), 8000),
]


@pytest.mark.slow
@pytest.mark.parametrize("name,factory,steps", PROTOCOLS, ids=[p[0] for p in PROTOCOLS])
class TestProtocolsRespectTheirStateSpace:
    def test_from_clean_start(self, name, factory, steps):
        protocol = factory()
        rng = make_rng(10, "inv-clean", name)
        monitor = InvariantMonitor(protocol)
        sim = Simulation(protocol, rng=rng, monitors=[monitor])
        sim.run(steps)  # raises on any violation

    def test_from_adversarial_start(self, name, factory, steps):
        protocol = factory()
        rng = make_rng(11, "inv-adv", name)
        monitor = InvariantMonitor(protocol)
        sim = Simulation(
            protocol, protocol.random_configuration(rng), rng=rng, monitors=[monitor]
        )
        sim.run(steps)
