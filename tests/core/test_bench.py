"""Tests for the statistical benchmark harness (:mod:`repro.obs.bench`).

The gate contract: a re-run at the same speed never flags (threshold
*and* statistical significance must both trip), a genuine 10x slowdown
always flags, and polarity is handled so "worse" means slower for
time-like metrics and lower for throughput-like metrics.
"""

import json
import random

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchSuite,
    baseline_path,
    bootstrap_ratio_ci,
    compare_cells,
    compare_suites,
    discover_suites,
    ledger_fields,
    load_baseline,
    render_comparison,
    render_suite_result,
    run_suite,
    save_baseline,
)


def _cell_doc(name, values, *, metric="seconds", higher_is_better=False):
    mean = sum(values) / len(values)
    return {
        "cell": name,
        "metric": metric,
        "higher_is_better": higher_is_better,
        "repeats": len(values),
        "values": list(values),
        "mean": mean,
        "stdev": 0.0,
    }


def _suite_doc(cells, suite="s"):
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "seed": 1,
        "cells": cells,
        "wall_seconds": 0.0,
    }


class TestBenchSuite:
    def test_duplicate_cell_rejected(self):
        suite = BenchSuite("s").cell("a", lambda seed, repeat: 1.0)
        with pytest.raises(ValueError, match="already has a cell"):
            suite.cell("a", lambda seed, repeat: 2.0)

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats must be"):
            BenchSuite("s").cell("a", lambda seed, repeat: 1.0, repeats=0)

    def test_run_suite_records_values_and_stats(self):
        calls = []

        def fn(seed, repeat):
            calls.append((seed, repeat))
            return float(10 + repeat)

        suite = BenchSuite("s").cell(
            "a", fn, repeats=3, metric="widgets", higher_is_better=True
        )
        result = run_suite(suite, seed=42)
        assert calls == [(42, 0), (42, 1), (42, 2)]
        cell = result["cells"][0]
        assert cell["values"] == [10.0, 11.0, 12.0]
        assert cell["mean"] == 11.0
        assert cell["stdev"] == 1.0
        assert cell["metric"] == "widgets"
        assert result["schema_version"] == BENCH_SCHEMA_VERSION
        assert "created_unix" in result

    def test_none_return_measured_by_wall_time(self):
        suite = BenchSuite("s").cell("a", lambda seed, repeat: None, repeats=2)
        result = run_suite(suite, seed=1)
        cell = result["cells"][0]
        assert cell["metric"] == "seconds"
        assert all(value > 0 for value in cell["values"])

    def test_cells_filter_and_unknown_rejected(self):
        suite = (
            BenchSuite("s")
            .cell("a", lambda seed, repeat: 1.0, repeats=1)
            .cell("b", lambda seed, repeat: 2.0, repeats=1)
        )
        result = run_suite(suite, seed=1, cells=["b"])
        assert [cell["cell"] for cell in result["cells"]] == ["b"]
        with pytest.raises(ValueError, match="has no cell"):
            run_suite(suite, seed=1, cells=["zzz"])

    def test_repeats_override(self):
        suite = BenchSuite("s").cell("a", lambda seed, repeat: 1.0, repeats=5)
        result = run_suite(suite, seed=1, repeats=2)
        assert result["cells"][0]["repeats"] == 2


class TestBootstrapCi:
    def test_identical_samples_ci_covers_parity(self):
        values = [1.0, 1.01, 0.99]
        low, high = bootstrap_ratio_ci(values, values, rng=random.Random(1))
        assert low <= 1.0 <= high

    def test_tenfold_shift_excludes_parity(self):
        base = [1.0, 1.02, 0.98]
        curr = [10.0, 10.2, 9.8]
        low, high = bootstrap_ratio_ci(base, curr, rng=random.Random(1))
        assert low > 5.0

    def test_deterministic_given_rng(self):
        base, curr = [1.0, 1.1, 0.9], [1.2, 1.3, 1.1]
        first = bootstrap_ratio_ci(base, curr, rng=random.Random(7))
        second = bootstrap_ratio_ci(base, curr, rng=random.Random(7))
        assert first == second


class TestCompareCells:
    def test_same_values_never_flag(self):
        base = _cell_doc("a", [1.0, 1.02, 0.98])
        verdict = compare_cells(base, dict(base), rng=random.Random(1))
        assert not verdict["regression"]
        assert verdict["change_worse_pct"] == 0.0

    def test_noise_within_threshold_never_flags(self):
        base = _cell_doc("a", [1.0, 1.05, 0.95])
        curr = _cell_doc("a", [1.1, 1.15, 1.05])  # +10% < 20% threshold
        verdict = compare_cells(base, curr, rng=random.Random(1))
        assert not verdict["regression"]

    def test_tenfold_slowdown_flagged(self):
        base = _cell_doc("a", [1.0, 1.02, 0.98])
        curr = _cell_doc("a", [10.0, 10.2, 9.8])
        verdict = compare_cells(base, curr, rng=random.Random(1))
        assert verdict["regression"]
        assert "worse" in verdict["reason"]

    def test_throughput_polarity(self):
        """For higher-is-better metrics a *drop* is the regression."""
        base = _cell_doc("a", [100.0, 101.0, 99.0], metric="ips", higher_is_better=True)
        slower = _cell_doc("a", [10.0, 10.1, 9.9], metric="ips", higher_is_better=True)
        faster = _cell_doc(
            "a", [1000.0, 1010.0, 990.0], metric="ips", higher_is_better=True
        )
        assert compare_cells(base, slower, rng=random.Random(1))["regression"]
        improved = compare_cells(base, faster, rng=random.Random(1))
        assert not improved["regression"]
        assert improved["change_worse_pct"] < 0

    def test_past_threshold_but_noisy_not_flagged(self):
        """Threshold alone is not enough when noise explains the move."""
        base = _cell_doc("a", [1.0, 2.0, 0.5])
        curr = _cell_doc("a", [1.6, 3.0, 0.4])  # +37% mean, huge variance
        verdict = compare_cells(base, curr, rng=random.Random(1))
        assert not verdict["regression"]

    def test_single_repeat_falls_back_to_threshold(self):
        """With one repeat per side there is no variance to test; the
        relative threshold alone gates (so slow single-shot cells still
        catch 10x cliffs)."""
        base = _cell_doc("a", [1.0])
        curr = _cell_doc("a", [10.0])
        verdict = compare_cells(base, curr, rng=random.Random(1))
        assert verdict["regression"]
        assert "single repeat" in verdict["reason"]

    def test_per_cell_threshold_override(self):
        base = _cell_doc("a", [1.0, 1.0, 1.0])
        curr = _cell_doc("a", [1.5, 1.5, 1.5])
        curr["rel_threshold"] = 0.9
        verdict = compare_cells(base, curr, rng=random.Random(1))
        assert not verdict["regression"]  # +50% < 90% override


class TestCompareSuites:
    def test_added_and_removed_cells_never_flag(self):
        base = _suite_doc([_cell_doc("old", [1.0, 1.0])])
        curr = _suite_doc([_cell_doc("new", [1.0, 1.0])])
        comparison = compare_suites(base, curr)
        assert comparison["regressions"] == 0
        assert comparison["added"] == ["new"]
        assert comparison["removed"] == ["old"]

    def test_suite_mismatch_rejected(self):
        with pytest.raises(ValueError, match="suite mismatch"):
            compare_suites(_suite_doc([], suite="a"), _suite_doc([], suite="b"))

    def test_deterministic_verdicts(self):
        base = _suite_doc([_cell_doc("a", [1.0, 1.1, 0.9])])
        curr = _suite_doc([_cell_doc("a", [1.3, 1.4, 1.2])])
        assert compare_suites(base, curr) == compare_suites(base, curr)

    def test_rendering_smoke(self):
        base = _suite_doc([_cell_doc("a", [1.0, 1.0])])
        curr = _suite_doc([_cell_doc("a", [10.0, 10.0])])
        comparison = compare_suites(base, curr)
        text = render_comparison(comparison)
        assert "REGRESSION" in text
        result = _suite_doc([_cell_doc("a", [1.0, 1.0])])
        result["seed"] = 1
        result["cells"][0]["repeats"] = 2
        assert "suite s" in render_suite_result(result)


class TestBaselines:
    def test_round_trip(self, tmp_path):
        doc = _suite_doc([_cell_doc("a", [1.0, 2.0])], suite="engine")
        path = save_baseline(doc, baseline_dir=str(tmp_path))
        assert path == baseline_path("engine", str(tmp_path))
        assert load_baseline("engine", baseline_dir=str(tmp_path)) == doc

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_baseline("absent", baseline_dir=str(tmp_path)) is None


class TestDiscovery:
    def test_discovers_declared_suites(self, tmp_path):
        (tmp_path / "bench_alpha.py").write_text(
            "def bench_suite():\n"
            "    from repro.obs.bench import BenchSuite\n"
            "    return BenchSuite('alpha').cell('c', lambda s, r: 1.0, repeats=1)\n"
        )
        (tmp_path / "bench_helper.py").write_text("# no bench_suite() here\n")
        (tmp_path / "bench_broken.py").write_text("raise RuntimeError('nope')\n")
        suites = discover_suites(str(tmp_path))
        assert list(suites) == ["alpha"]
        assert [cell.name for cell in suites["alpha"].cells] == ["c"]

    def test_repo_benchmarks_declare_engine_suite(self):
        suites = discover_suites("benchmarks")
        assert "engine" in suites
        names = {cell.name for cell in suites["engine"].cells}
        assert "count-ciw-n1024" in names


class TestLedgerFields:
    def test_compact_payload(self):
        result = _suite_doc([_cell_doc("a", [1.0, 1.0])], suite="engine")
        result["seed"] = 9
        result["cells"][0]["repeats"] = 2
        base = _suite_doc([_cell_doc("a", [0.1, 0.1])], suite="engine")
        comparison = compare_suites(base, result)
        fields = ledger_fields(result, comparison)
        assert fields["suite"] == "engine"
        assert fields["cells"]["a"]["mean"] == 1.0
        assert fields["regressions"] == 1
        assert fields["flagged_cells"] == ["a"]
        json.dumps(fields)  # must be ledger-serializable

    def test_no_comparison(self):
        result = _suite_doc([_cell_doc("a", [1.0])], suite="engine")
        result["seed"] = 9
        result["cells"][0]["repeats"] = 1
        fields = ledger_fields(result, None)
        assert "regressions" not in fields
