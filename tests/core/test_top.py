"""Tests for the ``repro top`` dashboard (:mod:`repro.obs.top`).

The renderer is a pure function over the three fetched documents
(health, job listing, metrics text), so these tests draw frames from
literal fixtures; the polling loop is exercised with a stubbed client
-- the same separation that lets CI snapshot a frame with ``--once``.
"""

import io

import pytest

from repro.obs.top import render_top, run_top

HEALTH = {
    "status": "ok",
    "uptime_seconds": 42.0,
    "queue_depth": 1,
    "backlog_weight": 3,
    "max_queue": 16,
    "concurrency": 2,
    "degraded_reasons": [],
}

METRICS = (
    "# TYPE repro_jobs_submitted_total counter\n"
    'repro_jobs_submitted_total{kind="chaos"} 3\n'
    "# TYPE repro_trials_completed_total counter\n"
    'repro_trials_completed_total{status="ok"} 40\n'
    "# TYPE repro_job_wall_seconds_ema gauge\n"
    "repro_job_wall_seconds_ema 2.5\n"
)


def jobs_doc(*jobs):
    return {"jobs": list(jobs)}


class TestRenderTop:
    def test_header_carries_health(self):
        frame, _ = render_top(HEALTH, jobs_doc(), METRICS, now=1.0)
        header = frame.splitlines()[0]
        assert "status ok" in header
        assert "up 42s" in header
        assert "queue 1 (weight 3/16)" in header
        assert "jobs x2" in header

    def test_degraded_reasons_surface(self):
        health = dict(HEALTH, status="degraded",
                      degraded_reasons=["ledger: disk full"])
        frame, _ = render_top(health, jobs_doc(), METRICS, now=1.0)
        assert "DEGRADED: ledger: disk full" in frame

    def test_progress_bar_from_trial_spans(self):
        job = {"id": "job-abc", "kind": "chaos", "state": "running",
               "attempt": 1, "trials_done": 6, "trials_total": 12,
               "created_unix": 10}
        frame, _ = render_top(HEALTH, jobs_doc(job), METRICS, now=1.0)
        row = next(line for line in frame.splitlines() if "job-abc" in line)
        assert "6/12" in row
        bar = row[row.index("["): row.index("]") + 1]
        assert bar.count("#") == bar.count(".")  # half done

    def test_unknown_total_shows_live_count(self):
        job = {"id": "job-run", "kind": "run", "state": "running",
               "attempt": 1, "trials_done": 7, "created_unix": 10}
        frame, _ = render_top(HEALTH, jobs_doc(job), METRICS, now=1.0)
        assert "7 trial(s)" in frame

    def test_rate_from_successive_scrapes(self):
        _, sample = render_top(HEALTH, jobs_doc(), METRICS, now=100.0)
        assert sample == (100.0, 40.0)
        frame, _ = render_top(
            HEALTH, jobs_doc(), METRICS.replace(" 40", " 60"),
            previous=sample, now=110.0,
        )
        assert "(2.0/s)" in frame

    def test_live_jobs_sort_before_terminal(self):
        done = {"id": "job-done", "kind": "run", "state": "done",
                "attempt": 1, "created_unix": 1}
        running = {"id": "job-live", "kind": "chaos", "state": "running",
                   "attempt": 1, "created_unix": 2}
        frame, _ = render_top(HEALTH, jobs_doc(done, running), METRICS, now=1.0)
        lines = frame.splitlines()
        assert lines.index(next(l for l in lines if "job-live" in l)) < \
            lines.index(next(l for l in lines if "job-done" in l))

    def test_missing_families_render_as_dash(self):
        frame, sample = render_top(HEALTH, jobs_doc(), "", now=1.0)
        assert "submitted -" in frame
        assert sample is None

    def test_malformed_metrics_raise(self):
        with pytest.raises(ValueError):
            render_top(HEALTH, jobs_doc(), "torn{ 1\n", now=1.0)


class TestRunTop:
    def _stub_client(self, monkeypatch, *, fail=False):
        from repro.service import client

        if fail:
            def boom(url, **kwargs):
                raise OSError("connection refused")
            monkeypatch.setattr(client, "get_health", boom)
        else:
            monkeypatch.setattr(client, "get_health", lambda url, **k: HEALTH)
        monkeypatch.setattr(client, "list_jobs", lambda url, **k: jobs_doc())
        monkeypatch.setattr(client, "get_metrics", lambda url, **k: METRICS)

    def test_once_renders_single_frame(self, monkeypatch):
        self._stub_client(monkeypatch)
        out = io.StringIO()
        code = run_top("http://x", once=True, out=out)
        assert code == 0
        frame = out.getvalue()
        assert frame.startswith("repro top | status ok")
        assert "\x1b[" not in frame  # --once never clears the screen

    def test_once_unreachable_is_nonzero(self, monkeypatch):
        self._stub_client(monkeypatch, fail=True)
        out = io.StringIO()
        code = run_top("http://x", once=True, out=out)
        assert code == 1
        assert "unreachable" in out.getvalue()
