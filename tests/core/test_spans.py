"""Tests for causal spans (:mod:`repro.obs.spans`) and their recorder.

Contracts: span ids are deterministic functions of job/trial identity,
the stream validator enforces the tree invariants (a begin needs a
live parent, no double-open, no dangling opens) while allowing the
retry idiom (a closed span may re-begin under the same identity), the
recorder's begin/end bookkeeping round-trips through a trace file, and
wall-clock timing appears only under profiling -- recorded traces stay
byte-deterministic otherwise.
"""

import pytest

from repro.obs import (
    MetricsRecorder,
    TraceWriter,
    attempt_span_id,
    build_span_tree,
    read_trace,
    stage_span_id,
    validate_spans,
    validate_trace,
)
from repro.obs.spans import SPAN_SCHEMA_VERSION


def begin(span_id, kind="trial", parent=None, **fields):
    record = {
        "span_schema": SPAN_SCHEMA_VERSION,
        "op": "begin",
        "id": span_id,
        "kind": kind,
        **fields,
    }
    if parent is not None:
        record["parent"] = parent
    return record


def end(span_id, status="ok", **fields):
    return {
        "span_schema": SPAN_SCHEMA_VERSION,
        "op": "end",
        "id": span_id,
        "status": status,
        **fields,
    }


class TestSpanIds:
    def test_attempt_id_is_job_slash_attempt(self):
        assert attempt_span_id("job-abc", 2) == "job-abc/a2"

    def test_stage_id_is_parent_hash_stage(self):
        assert stage_span_id("7:chaos:0", "delta") == "7:chaos:0#delta"


class TestValidateSpans:
    def test_wellformed_tree_validates_clean(self):
        records = [
            begin("j", kind="job"),
            begin("j/a1", kind="attempt", parent="j"),
            begin("t0", kind="trial", parent="j/a1"),
            end("t0"),
            end("j/a1"),
            end("j"),
        ]
        assert validate_spans(records) == []

    def test_begin_while_open_is_a_problem(self):
        records = [begin("x"), begin("x"), end("x")]
        problems = validate_spans(records)
        assert any("already open" in p for p in problems)

    def test_rebegin_after_close_is_legal(self):
        """The retry idiom: a pool-broken trial (or a retried job)
        closes and re-runs under the same identity."""
        records = [begin("x"), end("x", status="retried"), begin("x"), end("x")]
        assert validate_spans(records) == []

    def test_end_without_begin_is_a_problem(self):
        assert any("not open" in p for p in validate_spans([end("ghost")]))

    def test_parent_must_be_open_at_begin(self):
        records = [begin("p"), end("p"), begin("c", parent="p"), end("c")]
        problems = validate_spans(records)
        assert any("parent" in p for p in problems)

    def test_dangling_open_is_a_problem(self):
        problems = validate_spans([begin("x")])
        assert any("never closed" in p or "open at end" in p for p in problems)

    def test_bad_kind_and_status_flagged(self):
        records = [begin("x", kind="banana"), end("x", status="meh")]
        problems = validate_spans(records)
        assert len(problems) >= 2

    def test_unknown_schema_version_flagged(self):
        record = begin("x")
        record["span_schema"] = 99
        problems = validate_spans([record, end("x")])
        assert any("schema" in p for p in problems)


class TestBuildSpanTree:
    def test_tree_structure(self):
        records = [
            begin("j", kind="job"),
            begin("j/a1", kind="attempt", parent="j"),
            begin("t0", kind="trial", parent="j/a1"),
            end("t0"),
            end("j/a1"),
            end("j"),
        ]
        roots, by_id = build_span_tree(records)
        assert [node.span_id for node in roots] == ["j"]
        assert [node.span_id for node in by_id["j"].children] == ["j/a1"]
        assert [node.span_id for node in by_id["j/a1"].children] == ["t0"]
        assert [node.span_id for node in roots[0].walk()] == ["j", "j/a1", "t0"]

    def test_orphan_parent_becomes_root(self):
        """A span whose parent never appears in the stream (a shard
        viewed in isolation) roots itself rather than vanishing."""
        records = [begin("t0", parent="elsewhere"), end("t0")]
        roots, _ = build_span_tree(records)
        assert [node.span_id for node in roots] == ["t0"]


class TestRecorderSpans:
    def test_begin_end_bookkeeping(self):
        recorder = MetricsRecorder()
        recorder.begin_span("job", "j", name="chaos")
        recorder.begin_span("attempt", "j/a1", parent="j", attempt=1)
        assert list(recorder.open_spans) == ["j", "j/a1"]
        recorder.end_span("j/a1")
        recorder.end_span("j")
        assert recorder.open_spans == {}
        assert validate_spans(recorder.spans) == []
        # end copies the begin's kind so a lone end record is typed
        assert recorder.spans[-1]["kind"] == "job"

    def test_end_is_idempotent_for_unknown_ids(self):
        recorder = MetricsRecorder()
        recorder.end_span("never-begun")
        assert recorder.spans == []

    def test_close_open_spans_closes_innermost_first(self):
        recorder = MetricsRecorder()
        recorder.begin_span("job", "j")
        recorder.begin_span("attempt", "j/a1", parent="j")
        recorder.begin_span("trial", "t0", parent="j/a1")
        closed = recorder.close_open_spans("cancelled")
        assert closed == 3
        ends = [r for r in recorder.spans if r["op"] == "end"]
        assert [r["id"] for r in ends] == ["t0", "j/a1", "j"]
        assert all(r["status"] == "cancelled" for r in ends)
        assert validate_spans(recorder.spans) == []

    def test_invalid_kind_and_status_raise(self):
        recorder = MetricsRecorder()
        with pytest.raises(ValueError):
            recorder.begin_span("banana", "x")
        recorder.begin_span("trial", "x")
        with pytest.raises(ValueError):
            recorder.end_span("x", status="meh")

    def test_wall_seconds_only_under_profile(self):
        recorder = MetricsRecorder()
        recorder.begin_span("trial", "t0")
        recorder.end_span("t0")
        assert "wall_seconds" not in recorder.spans[-1]
        profiled = MetricsRecorder(profile=True)
        profiled.begin_span("trial", "t0")
        profiled.end_span("t0")
        assert profiled.spans[-1]["wall_seconds"] >= 0.0

    def test_spans_round_trip_through_a_trace(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path)
        recorder = MetricsRecorder(trace=writer)
        recorder.begin_span("job", "j", name="chaos")
        recorder.end_span("j")
        writer.close()
        assert validate_trace(path) == []
        spans = [r for r in read_trace(path) if r.get("type") == "span"]
        assert [r["op"] for r in spans] == ["begin", "end"]
        stripped = [
            {k: v for k, v in r.items() if k not in ("type", "v")}
            for r in spans
        ]
        assert validate_spans(stripped) == []

    def test_aggregates_count_spans_only_when_present(self):
        recorder = MetricsRecorder()
        assert "spans" not in recorder.aggregates()
        recorder.begin_span("job", "j")
        recorder.end_span("j")
        assert recorder.aggregates()["spans"] == 2
        assert recorder.to_json()["spans"] == recorder.spans
