"""Tests for repro.core.configuration."""

import pytest

from repro.core.configuration import (
    canonical_key,
    is_silent,
    leader_count,
    ranks_are_permutation,
    summary_counts,
)
from repro.core.errors import NotSilentError
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.sync_dictionary import SyncDictionarySSR


class TestRanksArePermutation:
    def test_exact_permutation(self):
        assert ranks_are_permutation([2, 1, 3], 3)

    def test_duplicate_rank(self):
        assert not ranks_are_permutation([1, 1, 3], 3)

    def test_missing_rank(self):
        assert not ranks_are_permutation([1, 2, 2], 3)

    def test_none_entries(self):
        assert not ranks_are_permutation([1, None, 3], 3)

    def test_out_of_range(self):
        assert not ranks_are_permutation([0, 1, 2], 3)
        assert not ranks_are_permutation([2, 3, 4], 3)

    def test_non_integer_rank(self):
        assert not ranks_are_permutation([1, "2", 3], 3)
        # bool is an int subclass; True == 1 counts as a valid rank value
        assert ranks_are_permutation([True, 2], 2)

    def test_empty_is_trivially_wrong_for_positive_n(self):
        assert not ranks_are_permutation([], 3)


class TestLeaderCount:
    def test_counts_rank_one(self):
        assert leader_count([1, 2, 3, 1]) == 2
        assert leader_count([None, 2]) == 0


class TestSummaryAndCanonicalKey:
    def test_summary_counts(self):
        protocol = SilentNStateSSR(4)
        counts = summary_counts(protocol, [0, 0, 1, 2])
        assert counts == {0: 2, 1: 1, 2: 1}

    def test_canonical_key_permutation_invariant(self):
        protocol = SilentNStateSSR(4)
        assert canonical_key(protocol, [0, 1, 2, 2]) == canonical_key(
            protocol, [2, 2, 1, 0]
        )

    def test_canonical_key_distinguishes_multisets(self):
        protocol = SilentNStateSSR(4)
        assert canonical_key(protocol, [0, 1, 2, 3]) != canonical_key(
            protocol, [0, 0, 2, 3]
        )


class TestIsSilent:
    def test_ranked_ciw_is_silent(self):
        protocol = SilentNStateSSR(5)
        assert is_silent(protocol, [0, 1, 2, 3, 4])

    def test_duplicate_rank_is_not_silent(self):
        protocol = SilentNStateSSR(5)
        assert not is_silent(protocol, [0, 0, 1, 2, 3])

    def test_same_state_needs_multiplicity_two(self):
        # A single agent in a state that only reacts with itself is inert.
        protocol = SilentNStateSSR(3)
        assert is_silent(protocol, [0, 1, 2])
        assert not is_silent(protocol, [1, 1, 2])

    def test_non_silent_protocol_raises(self, rng):
        protocol = SyncDictionarySSR(4)
        states = protocol.unique_names_configuration(rng)
        with pytest.raises(NotSilentError):
            is_silent(protocol, states)
