"""Tests for repro.core.adversary."""

import pytest

from repro.core.adversary import (
    adversarial_battery,
    corrupted_configuration,
    identical_configuration,
)
from repro.core.countsim import CountSimulation, count_engine_eligible
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentSSR
from repro.protocols.sublinear.protocol import SublinearTimeSSR
from repro.protocols.sync_dictionary import SyncDictionarySSR


class TestGenericConstructions:
    def test_identical_configuration_clones_independent(self, rng):
        protocol = OptimalSilentSSR(5)
        states = identical_configuration(protocol, rng)
        assert len(states) == 5
        assert len({id(s) for s in states}) == 5  # no aliasing
        summaries = {protocol.summarize(s) for s in states}
        assert len(summaries) == 1

    def test_corrupted_configuration_changes_at_most_k(self, rng):
        protocol = SilentNStateSSR(10)
        base = list(range(10))
        corrupted = corrupted_configuration(protocol, base, rng, corruptions=3)
        assert len(corrupted) == 10
        changed = sum(1 for a, b in zip(base, corrupted) if a != b)
        assert changed <= 3
        assert base == list(range(10))  # base untouched

    def test_corruptions_capped_at_n(self, rng):
        protocol = SilentNStateSSR(4)
        corrupted = corrupted_configuration(protocol, [0, 1, 2, 3], rng, corruptions=99)
        assert len(corrupted) == 4


class TestBattery:
    @pytest.mark.parametrize(
        "protocol_factory",
        [
            lambda: SilentNStateSSR(8),
            lambda: OptimalSilentSSR(8),
            lambda: SublinearTimeSSR(6, h=1),
            lambda: SyncDictionarySSR(6),
        ],
    )
    def test_all_entries_have_full_population(self, protocol_factory, rng):
        protocol = protocol_factory()
        battery = adversarial_battery(protocol, rng)
        assert {"clean", "identical", "random-0"} <= set(battery)
        for label, states in battery.items():
            assert len(states) == protocol.n, label

    def test_ciw_battery_has_worst_case(self, rng):
        battery = adversarial_battery(SilentNStateSSR(8), rng)
        assert battery["worst-case"] == [0] + list(range(7))

    def test_optimal_silent_traps_present(self, rng):
        battery = adversarial_battery(OptimalSilentSSR(8), rng)
        for label in ("duplicate-rank", "already-ranked", "starving-unsettled",
                      "all-dormant-leaders", "one-unsettled"):
            assert label in battery

    def test_sublinear_traps_present(self, rng):
        protocol = SublinearTimeSSR(6, h=1)
        battery = adversarial_battery(protocol, rng)
        for label in ("ghost-name", "name-collision", "already-ranked", "all-dormant"):
            assert label in battery
        # ghost-name: every roster contains a name no agent holds.
        ghosts = set.union(*(set(s.roster) for s in battery["ghost-name"]))
        names = {s.name for s in battery["ghost-name"]}
        assert ghosts - names

    def test_name_collision_trap_actually_collides(self, rng):
        protocol = SublinearTimeSSR(6, h=1)
        battery = adversarial_battery(protocol, rng)
        names = [s.name for s in battery["name-collision"]]
        assert len(set(names)) == len(names) - 1

    def test_already_ranked_is_correct(self, rng):
        protocol = SublinearTimeSSR(6, h=1)
        battery = adversarial_battery(protocol, rng)
        assert protocol.is_correct(battery["already-ranked"])


_TRAP_FACTORIES = [SilentNStateSSR, OptimalSilentSSR]


class TestTrapsStabilizeOnBothEngines:
    """Every battery trap stabilizes at small n on *both* engines.

    The battery is the static lint's input; here it doubles as a dynamic
    stress suite: from each trap the protocol must reach (and the count
    engine must certify) a correct silent configuration.
    """

    @pytest.mark.parametrize("factory", _TRAP_FACTORIES, ids=["ciw", "optimal"])
    def test_generic_engine(self, factory, rng):
        protocol = factory(8)
        battery = adversarial_battery(protocol, rng)
        for label, states in battery.items():
            monitor = protocol.convergence_monitor()
            sim = Simulation(
                protocol,
                [protocol.clone_state(state) for state in states],
                rng=make_rng(3, "trap", label),
                monitors=[monitor],
            )
            for _ in range(40):
                if monitor.correct:
                    break
                sim.run(20_000)
            assert monitor.correct, f"{label}: not correct after {sim.interactions}"

    @pytest.mark.parametrize("factory", _TRAP_FACTORIES, ids=["ciw", "optimal"])
    def test_count_engine(self, factory, rng):
        protocol = factory(8)
        assert count_engine_eligible(protocol)
        battery = adversarial_battery(protocol, rng)
        for label, states in battery.items():
            sim = CountSimulation(
                factory(8),
                [protocol.clone_state(state) for state in states],
                rng=make_rng(4, "trap", label),
            )
            for _ in range(40):
                if sim.correct and sim.silent:
                    break
                sim.run(20_000)
            assert sim.correct and sim.silent, (
                f"{label}: not stable after {sim.interactions}"
            )
