"""Equivalence and unit tests for the count-based engine.

The load-bearing guarantees:

* exact per-seed agreement with :class:`CiwJumpSimulator` (same RNG
  consumption, same Fenwick layout) -- which is what justified swapping
  Table 1's CIW row onto the generic count engine;
* distributional agreement with the reference :class:`Simulation` on
  SilentNStateSSR and OptimalSilentSSR (seeded KS-style checks);
* transition memoization is sound (spy-RNG detection) and actually
  engages (call-count bound).
"""

import random
import statistics
from copy import deepcopy

import pytest

from repro.core.countsim import (
    CountSimulation,
    GrowableFenwick,
    count_engine_eligible,
)
from repro.core.configuration import is_silent
from repro.core.errors import NotSilentError
from repro.core.fastpath import (
    CiwJumpSimulator,
    FenwickTree,
    uniform_random_ciw_counts,
    worst_case_ciw_counts,
)
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.protocols.base import RankingProtocol
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.optimal_silent import OptimalSilentSSR
from repro.protocols.sublinear.protocol import SublinearTimeSSR
from repro.protocols.sync_dictionary import SyncDictionarySSR
from repro.statics.schema import FieldSpec, IntRange, register_schema, scalar_schema


def ks_statistic(a, b):
    """Two-sample Kolmogorov-Smirnov statistic."""
    import bisect

    a, b = sorted(a), sorted(b)
    gap = 0.0
    for x in sorted(set(a) | set(b)):
        gap = max(
            gap,
            abs(
                bisect.bisect_right(a, x) / len(a)
                - bisect.bisect_right(b, x) / len(b)
            ),
        )
    return gap


# ---------------------------------------------------------------------------
# A tiny randomized protocol for spy-RNG / memoization behaviour
# ---------------------------------------------------------------------------


class CoinFlipToy(RankingProtocol[int]):
    """States {0, 1}: a (1,1) meeting flips the responder with prob 1/2.

    Not silent, deliberately randomized on exactly one ordered pair, so
    it exercises the engine's per-pair randomness detection.
    """

    silent = False

    def __init__(self, n: int):
        super().__init__(n)

    def transition(self, a: int, b: int, rng: random.Random):
        if a == 1 and b == 1 and rng.random() < 0.5:
            return 1, 0
        if a == 0 and b == 0:
            return 0, 1
        return a, b

    def initial_state(self, rng: random.Random) -> int:
        return 0

    def random_state(self, rng: random.Random) -> int:
        return rng.randrange(2)

    def summarize(self, state: int) -> int:
        return state

    def rank_of(self, state: int):
        return None

    def state_count(self) -> int:
        return 2


@register_schema(CoinFlipToy)
def _coinflip_schema(protocol: CoinFlipToy):
    return scalar_schema(
        "CoinFlipToy", FieldSpec("value", IntRange(0, 1)), build=lambda value: value
    )


class CountingCiw(SilentNStateSSR):
    """SilentNStateSSR that counts transition-function invocations."""

    def __init__(self, n: int):
        super().__init__(n)
        self.transition_calls = 0

    def transition(self, a, b, rng):
        self.transition_calls += 1
        return super().transition(a, b, rng)


# ---------------------------------------------------------------------------
# GrowableFenwick
# ---------------------------------------------------------------------------


class TestGrowableFenwick:
    def test_append_set_total_across_growth(self):
        tree = GrowableFenwick()
        weights = [(i * 7) % 13 for i in range(100)]  # forces several growths
        for w in weights:
            tree.append(w)
        assert len(tree) == 100
        assert tree.total() == sum(weights)
        for i, w in enumerate(weights):
            assert tree.weight(i) == w
        tree.set(50, 1000)
        tree.add(51, 5)
        weights[50] = 1000
        weights[51] += 5
        assert tree.total() == sum(weights)

    def test_sample_matches_fixed_size_fenwick(self):
        """Equal weights => identical RNG consumption and selections."""
        weights = [0, 3, 0, 7, 2, 0, 11, 1]
        fixed = FenwickTree(len(weights))
        growable = GrowableFenwick()
        for i, w in enumerate(weights):
            fixed.set(i, w)
            growable.append(w)
        rng_a, rng_b = make_rng(1, "fen"), make_rng(1, "fen")
        for _ in range(500):
            assert fixed.sample(rng_a) == growable.sample(rng_b)

    def test_sample_proportionality(self):
        tree = GrowableFenwick()
        for w in [1, 0, 3]:
            tree.append(w)
        rng = make_rng(2, "fen")
        hits = [0, 0, 0]
        for _ in range(4000):
            hits[tree.sample(rng)] += 1
        assert hits[1] == 0
        assert hits[2] / hits[0] == pytest.approx(3.0, rel=0.2)

    def test_errors(self):
        tree = GrowableFenwick()
        tree.append(0)
        with pytest.raises(ValueError):
            tree.set(0, -1)
        with pytest.raises(ValueError):
            tree.sample(make_rng(3, "fen"))


# ---------------------------------------------------------------------------
# Eligibility
# ---------------------------------------------------------------------------


class TestEligibility:
    def test_lossless_schemas_are_eligible(self):
        assert count_engine_eligible(SilentNStateSSR(8))
        assert count_engine_eligible(OptimalSilentSSR(8))

    def test_out_of_key_fields_are_ineligible(self):
        assert not count_engine_eligible(SublinearTimeSSR(6, h=1))
        assert not count_engine_eligible(SyncDictionarySSR(6))

    def test_constructor_rejects_ineligible_protocol(self):
        protocol = SublinearTimeSSR(6, h=1)
        rng = make_rng(4, "elig")
        with pytest.raises(ValueError):
            CountSimulation(protocol, protocol.random_configuration(rng), rng=rng)

    def test_jump_mode_requires_silence(self):
        protocol = CoinFlipToy(6)
        rng = make_rng(5, "elig")
        with pytest.raises(NotSilentError):
            CountSimulation(
                protocol, protocol.random_configuration(rng), rng=rng, mode="jump"
            )

    def test_invalid_mode_rejected(self):
        protocol = SilentNStateSSR(4)
        with pytest.raises(ValueError):
            CountSimulation(
                protocol, [0, 1, 2, 3], rng=make_rng(6, "elig"), mode="warp"
            )


# ---------------------------------------------------------------------------
# Exact agreement with CiwJumpSimulator
# ---------------------------------------------------------------------------


class TestExactCiwAgreement:
    def drive_pair(self, n, counts, seed_labels):
        protocol = SilentNStateSSR(n)
        sim = CountSimulation(
            protocol,
            protocol.counts_to_configuration(counts),
            rng=make_rng(*seed_labels),
            mode="jump",
        )
        ciw = CiwJumpSimulator(list(counts), make_rng(*seed_labels))
        return sim, ciw

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_event_by_event_trajectory(self, seed):
        n = 48
        sim, ciw = self.drive_pair(n, worst_case_ciw_counts(n), (seed, "exact"))
        while not ciw.converged:
            ciw.step_event()
            sim.run(ciw.interactions - sim.interactions)
            assert sim.interactions == ciw.interactions
            occupancy = sim.occupancy()
            for rank in range(n):
                assert occupancy.get((0, rank), 0) == ciw.counts[rank]
        assert sim.silent
        assert sim.changes == ciw.events

    def test_random_counts_agree_in_distribution(self):
        """From random starts slot order differs from rank order, so
        per-seed trajectories legitimately diverge (the Fenwick layouts
        map sampling targets differently); the interaction-count *laws*
        must still coincide."""
        n, trials = 16, 120
        ciw_totals, count_totals = [], []
        for trial in range(trials):
            counts = uniform_random_ciw_counts(n, make_rng(trial, "rand-counts"))
            sim, ciw = self.drive_pair(n, counts, (trial, "rand-exact"))
            ciw.run_to_convergence()
            assert sim.run_until_silent()
            assert sim.correct
            occupancy = sim.occupancy()
            assert all(occupancy.get((0, rank), 0) == 1 for rank in range(n))
            ciw_totals.append(ciw.interactions)
            count_totals.append(sim.interactions)
        assert ks_statistic(count_totals, ciw_totals) < 0.17
        assert statistics.mean(count_totals) == pytest.approx(
            statistics.mean(ciw_totals), rel=0.15
        )


# ---------------------------------------------------------------------------
# Distributional equivalence with the generic engine
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestDistributionalEquivalence:
    """Seeded KS checks: countsim vs Simulation produce the same laws.

    With 150-vs-150 samples the 5%-level KS critical value is ~0.157;
    the thresholds below sit at that order, and the seeds are fixed so
    the tests are deterministic.
    """

    TRIALS = 150

    def test_ciw_convergence_interactions(self):
        n = 6

        def count_engine_trials():
            times = []
            for trial in range(self.TRIALS):
                protocol = SilentNStateSSR(n)
                rng = make_rng(21, "ks-count", trial)
                sim = CountSimulation(
                    protocol, protocol.random_configuration(rng), rng=rng
                )
                assert sim.run_until_silent(max_interactions=10**7)
                times.append(sim.streak_start or 0)
            return times

        def generic_trials():
            times = []
            for trial in range(self.TRIALS):
                protocol = SilentNStateSSR(n)
                rng = make_rng(22, "ks-generic", trial)
                monitor = protocol.convergence_monitor()
                sim = Simulation(
                    protocol,
                    protocol.random_configuration(rng),
                    rng=rng,
                    monitors=[monitor],
                )
                while not (monitor.correct and is_silent(protocol, sim.states)):
                    sim.run(n)
                times.append(monitor.streak_start or 0)
            return times

        count_times = count_engine_trials()
        generic_times = generic_trials()
        assert ks_statistic(count_times, generic_times) < 0.16
        assert statistics.mean(count_times) == pytest.approx(
            statistics.mean(generic_times), rel=0.15
        )

    def test_optimal_silent_convergence_interactions(self):
        n = 6

        def trials(mode, seed_label):
            times = []
            for trial in range(self.TRIALS):
                protocol = OptimalSilentSSR(n)
                rng = make_rng(23, seed_label, trial)
                states = protocol.duplicate_rank_configuration(rank=1)
                if mode == "count":
                    sim = CountSimulation(protocol, states, rng=rng)
                    assert sim.run_until_silent(max_interactions=10**8)
                    times.append(sim.streak_start or 0)
                else:
                    monitor = protocol.convergence_monitor()
                    sim = Simulation(protocol, states, rng=rng, monitors=[monitor])
                    while not (
                        monitor.correct and is_silent(protocol, sim.states)
                    ):
                        sim.run(n)
                    times.append(monitor.streak_start or 0)
            return times

        count_times = trials("count", "ks-os-count")
        generic_times = trials("generic", "ks-os-generic")
        assert ks_statistic(count_times, generic_times) < 0.16
        assert statistics.mean(count_times) == pytest.approx(
            statistics.mean(generic_times), rel=0.15
        )

    def test_randomized_protocol_occupancy_distribution(self):
        """A protocol with a genuinely randomized pair matches too."""
        n, horizon = 6, 60

        def ones_after(engine, seed_label):
            ones = []
            for trial in range(self.TRIALS):
                protocol = CoinFlipToy(n)
                rng = make_rng(24, seed_label, trial)
                states = protocol.random_configuration(rng)
                if engine == "count":
                    sim = CountSimulation(protocol, states, rng=rng)
                    sim.run(horizon)
                    ones.append(sim.occupancy().get((0, 1), 0))
                else:
                    sim = Simulation(protocol, states, rng=rng)
                    sim.run(horizon)
                    ones.append(sum(sim.states))
            return ones

        count_ones = ones_after("count", "ks-coin-count")
        generic_ones = ones_after("generic", "ks-coin-generic")
        assert ks_statistic(count_ones, generic_ones) < 0.16


# ---------------------------------------------------------------------------
# Memoization
# ---------------------------------------------------------------------------


class TestMemoization:
    def test_deterministic_transitions_run_once_per_ordered_pair(self):
        n = 16
        protocol = CountingCiw(n)
        rng = make_rng(31, "memo")
        sim = CountSimulation(
            protocol,
            protocol.random_configuration(rng),
            rng=rng,
            mode="interaction",
        )
        sim.run(5000)
        # Without memoization this would be 5000; with it, at most one
        # probe per ordered pair of distinct states ever present.
        assert protocol.transition_calls <= n * n

    def test_randomized_pairs_are_not_memoized(self):
        protocol = CoinFlipToy(4)
        rng = make_rng(32, "memo")
        sim = CountSimulation(protocol, [1, 1, 1, 1], rng=rng, mode="interaction")
        sim.run(400)
        # If the engine had frozen the first observed (1,1) outcome the
        # population would either never change or collapse to all-zero
        # immediately; under the true 1/2 law both states stay occupied
        # across 400 interactions with overwhelming probability.
        occupancy = sim.occupancy()
        assert occupancy.get((0, 1), 0) >= 1
        assert occupancy.get((0, 0), 0) >= 1


# ---------------------------------------------------------------------------
# Budget, bookkeeping and state hygiene
# ---------------------------------------------------------------------------


class TestBookkeeping:
    def test_interaction_mode_advances_exactly(self):
        protocol = SilentNStateSSR(8)
        rng = make_rng(41, "budget")
        sim = CountSimulation(
            protocol, protocol.worst_case_configuration(), rng=rng, mode="interaction"
        )
        sim.run(123)
        assert sim.interactions == 123
        assert sim.events == 123

    def test_jump_mode_budget_truncation_is_exact(self):
        n = 64
        protocol = SilentNStateSSR(n)
        rng = make_rng(42, "budget")
        sim = CountSimulation(
            protocol,
            protocol.counts_to_configuration(worst_case_ciw_counts(n)),
            rng=rng,
            mode="jump",
        )
        assert not sim.run_until_silent(max_interactions=1000)
        assert sim.interactions == 1000

    def test_streak_and_regression_bookkeeping(self):
        n = 16
        protocol = SilentNStateSSR(n)
        rng = make_rng(43, "streak")
        sim = CountSimulation(
            protocol, protocol.counts_to_configuration(worst_case_ciw_counts(n)),
            rng=rng,
        )
        assert not sim.correct
        assert sim.run_until_silent()
        assert sim.correct
        assert sim.regressions == 0
        # CIW reaches correctness exactly at its last effective event.
        assert sim.streak_start == sim.interactions

    def test_initially_correct_configuration(self):
        protocol = SilentNStateSSR(5)
        sim = CountSimulation(protocol, [0, 1, 2, 3, 4], rng=make_rng(44, "streak"))
        assert sim.correct
        assert sim.streak_start == 0

    def test_input_states_never_mutated(self):
        protocol = OptimalSilentSSR(8)
        rng = make_rng(45, "hygiene")
        states = protocol.random_configuration(rng)
        snapshot = deepcopy(states)
        sim = CountSimulation(protocol, states, rng=rng)
        sim.run_until_silent(max_interactions=10**7)
        assert states == snapshot

    def test_occupancy_and_expansion_conserve_agents(self):
        protocol = OptimalSilentSSR(8)
        rng = make_rng(46, "conserve")
        sim = CountSimulation(protocol, protocol.random_configuration(rng), rng=rng)
        sim.run(500)
        assert sum(sim.occupancy().values()) == 8
        expanded = sim.expand_states()
        assert len(expanded) == 8
        schema_keys = sorted(map(repr, (sim._schema.key(s) for s in expanded)))
        occupancy_keys = sorted(
            key_repr
            for key, count in sim.occupancy().items()
            for key_repr in [repr(key)] * count
        )
        assert schema_keys == occupancy_keys

    def test_auto_mode_switches_to_jump_near_silence(self):
        n = 16
        protocol = SilentNStateSSR(n)
        rng = make_rng(47, "switch")
        sim = CountSimulation(protocol, protocol.random_configuration(rng), rng=rng)
        assert sim.mode == "interaction"
        assert sim.run_until_silent(max_interactions=10**7)
        assert sim.mode == "jump"
        assert sim.silent
