"""Tests for repro.core.fastpath.

The headline requirement: the exact-jump simulator's interaction counts
must match the sequential engine's *in distribution* -- verified here by
comparing sample means over matched trial batches, alongside unit and
property tests of the Fenwick tree primitive.
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastpath import (
    CiwJumpSimulator,
    FenwickTree,
    _geometric,
    uniform_random_ciw_counts,
    worst_case_ciw_counts,
)
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR


class TestFenwickTree:
    def test_set_and_total(self):
        tree = FenwickTree(5)
        tree.set(0, 3)
        tree.set(4, 2)
        assert tree.total() == 5
        tree.set(0, 1)
        assert tree.total() == 3
        assert tree.weight(0) == 1

    def test_rejects_bad_sizes_and_weights(self):
        with pytest.raises(ValueError):
            FenwickTree(0)
        tree = FenwickTree(3)
        with pytest.raises(ValueError):
            tree.set(1, -1)

    def test_sample_respects_weights(self, rng):
        tree = FenwickTree(4)
        tree.set(1, 3)
        tree.set(3, 1)
        counts = Counter(tree.sample(rng) for _ in range(4000))
        assert set(counts) == {1, 3}
        assert abs(counts[1] / 4000 - 0.75) < 0.05

    def test_sample_all_zero_raises(self, rng):
        with pytest.raises(ValueError):
            FenwickTree(3).sample(rng)

    @given(
        weights=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_prefix_sums(self, weights, data):
        tree = FenwickTree(len(weights))
        for index, weight in enumerate(weights):
            tree.set(index, weight)
        assert tree.total() == sum(weights)
        if sum(weights) > 0:
            sample_rng = random.Random(data.draw(st.integers(0, 2**32)))
            index = tree.sample(sample_rng)
            assert weights[index] > 0


class TestGeometric:
    def test_p_one_is_zero(self, rng):
        assert _geometric(rng, 1.0) == 0

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            _geometric(rng, 0.0)
        with pytest.raises(ValueError):
            _geometric(rng, 1.5)

    def test_mean_matches_theory(self, rng):
        p = 0.2
        samples = [_geometric(rng, p) for _ in range(20_000)]
        # E[failures before success] = (1 - p) / p = 4.
        assert abs(sum(samples) / len(samples) - 4.0) < 0.15


class TestNotableConfigurations:
    def test_worst_case_counts(self):
        counts = worst_case_ciw_counts(6)
        assert counts == [2, 1, 1, 1, 1, 0]
        assert sum(counts) == 6

    def test_worst_case_rejects_tiny(self):
        with pytest.raises(ValueError):
            worst_case_ciw_counts(1)

    def test_uniform_random_counts_sum_to_n(self, rng):
        counts = uniform_random_ciw_counts(9, rng)
        assert sum(counts) == 9
        assert len(counts) == 9


class TestCiwJumpSimulator:
    def test_rejects_malformed_counts(self, rng):
        with pytest.raises(ValueError):
            CiwJumpSimulator([2, 1], rng)  # sums to 3, domain size 2
        with pytest.raises(ValueError):
            CiwJumpSimulator([1, -1, 2], rng)

    def test_already_converged(self, rng):
        sim = CiwJumpSimulator([1, 1, 1], rng)
        assert sim.converged
        assert sim.run_to_convergence() == 0
        with pytest.raises(ValueError):
            sim.step_event()

    def test_mass_conservation_and_domain(self, rng):
        sim = CiwJumpSimulator(worst_case_ciw_counts(8), rng)
        while not sim.converged:
            sim.step_event()
            assert sum(sim.counts) == 8
            assert all(c >= 0 for c in sim.counts)
        assert sim.counts == [1] * 8

    def test_worst_case_event_count_is_deterministic(self, rng):
        # From the paper's witness, exactly n - 1 bottleneck events occur.
        n = 12
        sim = CiwJumpSimulator(worst_case_ciw_counts(n), rng)
        sim.run_to_convergence()
        assert sim.events == n - 1

    def test_max_events_guard(self, rng):
        sim = CiwJumpSimulator(worst_case_ciw_counts(16), rng)
        with pytest.raises(RuntimeError):
            sim.run_to_convergence(max_events=1)

    @pytest.mark.slow
    def test_distribution_matches_generic_engine(self):
        """Jump-chain interaction counts match the sequential engine."""
        n, trials = 8, 300
        protocol = SilentNStateSSR(n)

        def generic_time(seed: int) -> int:
            rng = random.Random(seed)
            monitor = protocol.convergence_monitor()
            sim = Simulation(
                protocol,
                protocol.worst_case_configuration(),
                rng=rng,
                monitors=[monitor],
            )
            while not monitor.correct:
                sim.step()
            return sim.interactions

        def jump_time(seed: int) -> int:
            rng = random.Random(seed)
            sim = CiwJumpSimulator(worst_case_ciw_counts(n), rng)
            return sim.run_to_convergence()

        generic = [generic_time(1000 + t) for t in range(trials)]
        jump = [jump_time(2000 + t) for t in range(trials)]
        mean_generic = sum(generic) / trials
        mean_jump = sum(jump) / trials
        # Means agree within 15% (both ~ Theta(n^3) interactions here).
        assert abs(mean_generic - mean_jump) / mean_generic < 0.15
