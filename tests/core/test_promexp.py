"""Tests for the Prometheus exporter (:mod:`repro.obs.promexp`).

Contracts: the rendered text is valid exposition format (one HELP/TYPE
per family, samples sorted deterministically, label values escaped),
counters are monotone, histograms publish cumulative buckets with
``+Inf`` equal to the count, and the shared parser round-trips every
value the renderer emits while rejecting malformed lines -- the same
grammar ``repro top`` and the CI smoke scrape through.
"""

import math
import threading

import pytest

from repro.obs.promexp import (
    TelemetryRegistry,
    escape_label_value,
    get_registry,
    parse_prometheus_text,
    reset_registry,
)


class TestCounters:
    def test_counter_accumulates(self):
        registry = TelemetryRegistry()
        registry.counter("repro_jobs_total", 1)
        registry.counter("repro_jobs_total", 2)
        assert registry.value("repro_jobs_total") == 3

    def test_negative_increment_raises(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError):
            registry.counter("repro_jobs_total", -1)

    def test_labels_partition_the_family(self):
        registry = TelemetryRegistry()
        registry.counter("repro_jobs_total", 1, labels={"kind": "chaos"})
        registry.counter("repro_jobs_total", 5, labels={"kind": "bench"})
        assert registry.value("repro_jobs_total", {"kind": "chaos"}) == 1
        assert registry.value("repro_jobs_total", {"kind": "bench"}) == 5

    def test_counters_monotone_across_scrapes(self):
        registry = TelemetryRegistry()
        registry.counter("repro_events_total", 3)
        first = parse_prometheus_text(registry.render())
        registry.counter("repro_events_total", 2)
        second = parse_prometheus_text(registry.render())
        (before,) = first["repro_events_total"]["samples"].values()
        (after,) = second["repro_events_total"]["samples"].values()
        assert after >= before


class TestGauges:
    def test_gauge_overwrites(self):
        registry = TelemetryRegistry()
        registry.gauge("repro_queue_depth", 4)
        registry.gauge("repro_queue_depth", 1)
        assert registry.value("repro_queue_depth") == 1

    def test_gauge_may_go_negative(self):
        registry = TelemetryRegistry()
        registry.gauge("repro_drift", -2.5)
        assert registry.value("repro_drift") == -2.5


class TestHistograms:
    def test_buckets_are_cumulative_and_inf_equals_count(self):
        registry = TelemetryRegistry()
        for value in (0.01, 0.2, 0.2, 7.0):
            registry.observe("repro_wall_seconds", value)
        text = registry.render()
        families = parse_prometheus_text(text)
        samples = families["repro_wall_seconds"]["samples"]
        buckets = {
            dict(labels)["le"]: count
            for labels, count in samples.items()
            if dict(labels).get("__suffix__") == "_bucket"
        }
        counts = [buckets[le] for le in sorted(buckets, key=float)]
        assert counts == sorted(counts)  # cumulative, never decreasing
        count = next(
            value for labels, value in samples.items()
            if dict(labels).get("__suffix__") == "_count"
        )
        total = next(
            value for labels, value in samples.items()
            if dict(labels).get("__suffix__") == "_sum"
        )
        assert buckets["+Inf"] == count == 4
        assert total == pytest.approx(7.41)

    def test_histogram_renders_type_line(self):
        registry = TelemetryRegistry()
        registry.observe("repro_wall_seconds", 1.0)
        text = registry.render()
        assert "# TYPE repro_wall_seconds histogram" in text
        assert 'repro_wall_seconds_bucket{le="+Inf"} 1' in text


class TestRendering:
    def test_one_help_and_type_line_per_family(self):
        registry = TelemetryRegistry()
        registry.counter("repro_a_total", 1, labels={"k": "x"},
                         help_text="A total.")
        registry.counter("repro_a_total", 1, labels={"k": "y"})
        registry.gauge("repro_b", 2, help_text="B gauge.")
        text = registry.render()
        assert text.count("# TYPE repro_a_total counter") == 1
        assert text.count("# HELP repro_a_total A total.") == 1
        assert text.count("# TYPE repro_b gauge") == 1

    def test_render_is_deterministic(self):
        def build():
            registry = TelemetryRegistry()
            registry.counter("repro_z_total", 1, labels={"kind": "b"})
            registry.counter("repro_a_total", 1)
            registry.counter("repro_z_total", 1, labels={"kind": "a"})
            return registry.render()

        assert build() == build()

    def test_integer_values_render_bare(self):
        registry = TelemetryRegistry()
        registry.counter("repro_n_total", 3)
        assert "repro_n_total 3\n" in registry.render()

    def test_label_escaping_round_trips(self):
        tricky = 'quote " backslash \\ newline \n end'
        registry = TelemetryRegistry()
        registry.counter("repro_esc_total", 1, labels={"path": tricky})
        families = parse_prometheus_text(registry.render())
        (labels,) = families["repro_esc_total"]["samples"]
        assert dict(labels)["path"] == tricky

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestParser:
    def test_round_trips_rendered_values(self):
        registry = TelemetryRegistry()
        registry.counter("repro_jobs_total", 2, labels={"kind": "chaos"})
        registry.gauge("repro_queue_depth", 3)
        registry.observe("repro_wall_seconds", 0.3)
        families = parse_prometheus_text(registry.render())
        assert families["repro_jobs_total"]["type"] == "counter"
        assert families["repro_queue_depth"]["type"] == "gauge"
        assert families["repro_wall_seconds"]["type"] == "histogram"
        key = (("kind", "chaos"),)
        assert families["repro_jobs_total"]["samples"][key] == 2

    def test_special_float_values(self):
        registry = TelemetryRegistry()
        registry.gauge("repro_nan", float("nan"))
        registry.gauge("repro_inf", float("inf"))
        families = parse_prometheus_text(registry.render())
        (nan,) = families["repro_nan"]["samples"].values()
        (inf,) = families["repro_inf"]["samples"].values()
        assert math.isnan(nan)
        assert inf == float("inf")

    @pytest.mark.parametrize("line", [
        "no_value_here",
        'bad_label{k=unquoted} 1',
        "name 1 2 3 4",
        "# TYPE only_two",
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ValueError):
            parse_prometheus_text(line + "\n")


class TestRegistryLifecycle:
    def test_process_wide_default_survives_calls(self):
        reset_registry()
        get_registry().counter("repro_x_total", 1)
        assert get_registry().value("repro_x_total") == 1
        reset_registry()
        assert get_registry().value("repro_x_total") is None

    def test_snapshot_shapes(self):
        registry = TelemetryRegistry()
        registry.counter("repro_c_total", 2, labels={"kind": "run"})
        registry.gauge("repro_g", 1.5)
        registry.observe("repro_h", 0.2)
        snapshot = registry.snapshot()
        assert snapshot["repro_c_total"]["type"] == "counter"
        assert snapshot["repro_g"]["type"] == "gauge"
        assert snapshot["repro_h"]["type"] == "histogram"

    def test_thread_safety_under_contention(self):
        registry = TelemetryRegistry()

        def spin():
            for _ in range(500):
                registry.counter("repro_spin_total", 1)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("repro_spin_total") == 2000
