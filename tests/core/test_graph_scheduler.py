"""Tests for the graph-restricted scheduler (beyond-the-paper extension)."""

from collections import Counter

import pytest

from repro.core.rng import make_rng
from repro.core.scheduler import GraphScheduler, UniformRandomScheduler
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR


class TestConstruction:
    def test_validates_edges(self):
        with pytest.raises(ValueError):
            GraphScheduler(4, [(0, 4)])
        with pytest.raises(ValueError):
            GraphScheduler(4, [(1, 1)])
        with pytest.raises(ValueError):
            GraphScheduler(4, [])
        with pytest.raises(ValueError):
            GraphScheduler(1, [(0, 0)])

    def test_duplicate_edges_collapsed(self):
        scheduler = GraphScheduler(3, [(0, 1), (1, 0), (0, 1)])
        assert scheduler.edges == [(0, 1)]

    def test_factories(self):
        assert len(GraphScheduler.complete(5).edges) == 10
        assert len(GraphScheduler.ring(5).edges) == 5
        assert len(GraphScheduler.star(5).edges) == 4


class TestSampling:
    def test_pairs_only_on_edges(self, rng):
        scheduler = GraphScheduler.ring(6)
        allowed = {frozenset(edge) for edge in scheduler.edges}
        for _ in range(500):
            i, j = scheduler.next_pair(rng)
            assert frozenset((i, j)) in allowed

    def test_both_orientations_sampled(self, rng):
        scheduler = GraphScheduler(2, [(0, 1)])
        seen = {scheduler.next_pair(rng) for _ in range(100)}
        assert seen == {(0, 1), (1, 0)}

    def test_edges_roughly_uniform(self, rng):
        scheduler = GraphScheduler.star(4)
        counts = Counter(
            frozenset(scheduler.next_pair(rng)) for _ in range(9000)
        )
        for edge, count in counts.items():
            assert abs(count - 3000) < 400, edge

    def test_complete_matches_uniform_support(self, rng):
        graph = GraphScheduler.complete(4)
        uniform = UniformRandomScheduler(4)
        graph_pairs = {graph.next_pair(rng) for _ in range(2000)}
        uniform_pairs = {uniform.next_pair(rng) for _ in range(2000)}
        assert graph_pairs == uniform_pairs == {
            (i, j) for i in range(4) for j in range(4) if i != j
        }


class TestProtocolOnGraphs:
    """Why the paper's complete-graph assumption matters: the protocols
    detect errors through *direct* meetings of conflicting agents, so on
    a sparse graph two same-rank agents that never share an edge deadlock
    the baseline in an incorrect-but-quiescent configuration.  (Solving
    SSLE on restricted topologies is its own line of work -- Chen & Chen
    PODC'19, Sudo et al. SIROCCO'20 -- cited, not reproduced, here.)"""

    def test_ciw_converges_on_complete_graph_scheduler(self):
        n = 6
        protocol = SilentNStateSSR(n)
        rng = make_rng(1, "graph", "complete")
        monitor = protocol.convergence_monitor()
        sim = Simulation(
            protocol,
            protocol.worst_case_configuration(),
            rng=rng,
            scheduler=GraphScheduler.complete(n),
            monitors=[monitor],
        )
        budget = 3_000_000
        while not monitor.correct:
            assert sim.interactions < budget
            sim.step()
        assert protocol.is_correct(sim.states)

    def test_ciw_deadlocks_on_a_ring(self):
        # Ranks [0,1,0,1,0,1] on a 6-cycle: every edge joins distinct
        # ranks, so no transition is ever applicable -- yet the
        # configuration is incorrect.  Self-stabilization is lost.
        n = 6
        protocol = SilentNStateSSR(n)
        rng = make_rng(2, "graph", "ring")
        states = [0, 1, 0, 1, 0, 1]
        sim = Simulation(
            protocol, states, rng=rng, scheduler=GraphScheduler.ring(n)
        )
        sim.run(50_000)
        assert sim.states == [0, 1, 0, 1, 0, 1]
        assert not protocol.is_correct(sim.states)

    def test_ciw_deadlocks_on_a_star_with_leaf_duplicates(self):
        # Two equal-rank leaves never interact on a star; with the center
        # holding a rank that collides with nobody, nothing ever fires.
        n = 5
        protocol = SilentNStateSSR(n)
        rng = make_rng(3, "graph", "star")
        states = [4, 0, 0, 1, 2]  # center=agent 0 at rank 4; leaves collide
        sim = Simulation(
            protocol, states, rng=rng, scheduler=GraphScheduler.star(n)
        )
        sim.run(50_000)
        assert sim.states == [4, 0, 0, 1, 2]
        assert not protocol.is_correct(sim.states)
