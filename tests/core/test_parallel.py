"""Tests for the process-pool trial runner.

The contract under test: results are bit-identical whether trials run
serially or across worker processes, because each trial's RNG is derived
inside the worker from the same ``(seed, *labels, index)`` path -- and
that contract survives task errors, worker crashes, timeouts and
checkpoint/resume.
"""

import io
import multiprocessing
import os
import pickle
import random
import time
from functools import partial

import pytest

from repro.core import parallel
from repro.core.parallel import (
    ParallelTrialRunner,
    TrialTaskError,
    TrialTimeoutError,
    _append_checkpoint,
    _load_checkpoint,
)
from repro.core.rng import make_rng
from repro.experiments.common import repeat_convergence
from repro.protocols.cai_izumi_wada import SilentNStateSSR


def draw_uniform(rng: random.Random) -> float:
    """Top-level (picklable) trial task."""
    return rng.random()


def scaled_draw(scale: float, rng: random.Random) -> float:
    return scale * rng.random()


def make_ciw(n: int) -> SilentNStateSSR:
    return SilentNStateSSR(n)


def worst_case_states(protocol, rng):
    return protocol.worst_case_configuration()


def fail_if_matches(target: float, rng: random.Random) -> float:
    """Fails exactly on the trial whose first draw equals ``target``."""
    value = rng.random()
    if value == target:
        raise ValueError("boom")
    return value


def slow_draw(delay: float, rng: random.Random) -> float:
    time.sleep(delay)
    return rng.random()


def crash_worker_once(sentinel: str, rng: random.Random) -> float:
    """Kills its worker process the first time any trial reaches it.

    The sentinel file doubles as an atomic once-flag and as evidence
    (for the test) that a crash really happened.
    """
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return rng.random()
    os.close(fd)
    os._exit(1)


def crash_every_worker(rng: random.Random) -> float:
    """Kills any worker it runs in; computes normally in-process."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return rng.random()


def logging_draw(path: str, rng: random.Random) -> float:
    """Draws and appends to ``path`` -- an invocation counter for tests."""
    value = rng.random()
    with open(path, "a", encoding="utf8") as handle:
        handle.write(f"{value}\n")
    return value


class TestParallelTrialRunner:
    def test_trial_rngs_match_serial_derivation(self):
        results = ParallelTrialRunner().map_trials(
            draw_uniform, seed=9, labels=("t",), trials=5
        )
        expected = [make_rng(9, "t", i).random() for i in range(5)]
        assert results == expected

    def test_parallel_results_equal_serial(self):
        serial = ParallelTrialRunner(1).map_trials(
            partial(scaled_draw, 10.0), seed=3, labels=("p", 7), trials=8
        )
        parallel = ParallelTrialRunner(2).map_trials(
            partial(scaled_draw, 10.0), seed=3, labels=("p", 7), trials=8
        )
        assert serial == parallel

    def test_scalar_label_is_equivalent_to_singleton_path(self):
        scalar = ParallelTrialRunner().map_trials(
            draw_uniform, seed=4, labels="lbl", trials=3
        )
        tupled = ParallelTrialRunner().map_trials(
            draw_uniform, seed=4, labels=("lbl",), trials=3
        )
        assert scalar == tupled

    def test_unpicklable_task_falls_back_to_serial(self):
        runner = ParallelTrialRunner(4)
        results = runner.map_trials(
            lambda rng: rng.random(), seed=5, labels=("fb",), trials=4
        )
        expected = [make_rng(5, "fb", i).random() for i in range(4)]
        assert results == expected

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelTrialRunner(0)

    def test_repeat_convergence_parallel_matches_serial(self):
        kwargs = dict(
            make_protocol=partial(make_ciw, 6),
            make_states=worst_case_states,
            seed=6,
            label="rc",
            trials=4,
            max_time=10_000.0,
        )
        serial = repeat_convergence(**kwargs)
        parallel = repeat_convergence(
            runner=ParallelTrialRunner(2), **kwargs
        )
        assert serial == parallel
        assert all(outcome.converged for outcome in serial)

    def test_invalid_timeout_and_retries(self):
        with pytest.raises(ValueError):
            ParallelTrialRunner(timeout=0)
        with pytest.raises(ValueError):
            ParallelTrialRunner(pool_retries=-1)


class TestFaultTolerance:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_task_error_carries_trial_index(self, workers):
        target = make_rng(8, "err", 2).random()
        with pytest.raises(TrialTaskError) as info:
            ParallelTrialRunner(workers).map_trials(
                partial(fail_if_matches, target), seed=8, labels=("err",), trials=4
            )
        assert info.value.index == 2
        assert "ValueError: boom" in str(info.value)
        assert "ValueError" in info.value.remote_traceback

    def test_per_trial_timeout(self):
        runner = ParallelTrialRunner(2, timeout=0.25)
        with pytest.raises(TrialTimeoutError) as info:
            runner.map_trials(
                partial(slow_draw, 3.0), seed=9, labels=("slow",), trials=2
            )
        assert info.value.index == 0
        assert info.value.timeout == 0.25

    def test_worker_crash_retries_only_missing_trials(self, tmp_path):
        """A mid-run worker crash loses no completed trials and the final
        results are bit-identical to a fault-free serial run."""
        sentinel = str(tmp_path / "crashed")
        results = ParallelTrialRunner(2).map_trials(
            partial(crash_worker_once, sentinel),
            seed=12,
            labels=("crash",),
            trials=6,
        )
        assert os.path.exists(sentinel)  # a worker really died
        expected = [make_rng(12, "crash", i).random() for i in range(6)]
        assert results == expected

    def test_pool_exhaustion_falls_back_to_serial(self):
        """When every round breaks the pool, trials still finish serially."""
        results = ParallelTrialRunner(2, pool_retries=1).map_trials(
            crash_every_worker, seed=13, labels=("hopeless",), trials=3
        )
        assert results == [make_rng(13, "hopeless", i).random() for i in range(3)]

    def test_checkpoint_resume_skips_finished_trials(self, tmp_path):
        checkpoint = str(tmp_path / "journal.pkl")
        log = str(tmp_path / "invocations.log")
        task = partial(logging_draw, log)
        first = ParallelTrialRunner(checkpoint=checkpoint).map_trials(
            task, seed=14, labels=("ckpt",), trials=3
        )
        resumed = ParallelTrialRunner(checkpoint=checkpoint).map_trials(
            task, seed=14, labels=("ckpt",), trials=5
        )
        assert resumed[:3] == first
        assert resumed == [make_rng(14, "ckpt", i).random() for i in range(5)]
        with open(log, encoding="utf8") as handle:
            invocations = handle.read().splitlines()
        assert len(invocations) == 5  # trials 0-2 were never recomputed

    def test_checkpoint_distinguishes_run_keys(self, tmp_path):
        checkpoint = str(tmp_path / "journal.pkl")
        runner = ParallelTrialRunner(checkpoint=checkpoint)
        a = runner.map_trials(draw_uniform, seed=1, labels=("a",), trials=2)
        b = runner.map_trials(draw_uniform, seed=2, labels=("b",), trials=2)
        assert a != b
        assert runner.map_trials(draw_uniform, seed=1, labels=("a",), trials=2) == a

    def test_checkpoint_tolerates_truncated_tail(self, tmp_path):
        checkpoint = str(tmp_path / "journal.pkl")
        runner = ParallelTrialRunner(checkpoint=checkpoint)
        expected = runner.map_trials(draw_uniform, seed=15, labels=("t",), trials=3)
        with open(checkpoint, "ab") as handle:
            handle.write(b"\x80garbage-from-a-kill-9")
        assert (
            runner.map_trials(draw_uniform, seed=15, labels=("t",), trials=3)
            == expected
        )

    def test_pooled_run_writes_checkpoint(self, tmp_path):
        checkpoint = str(tmp_path / "journal.pkl")
        pooled = ParallelTrialRunner(2, checkpoint=checkpoint).map_trials(
            draw_uniform, seed=16, labels=("pc",), trials=4
        )
        # A later serial runner resumes purely from the journal.
        log_free = ParallelTrialRunner(checkpoint=checkpoint).map_trials(
            draw_uniform, seed=16, labels=("pc",), trials=4
        )
        assert pooled == log_free == [
            make_rng(16, "pc", i).random() for i in range(4)
        ]


class Unpicklable:
    """Raises from __reduce__ -- what a live object with an open handle does."""

    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


class _FlakyHandle(io.BytesIO):
    """A file whose reads fail with OSError past a byte limit."""

    def __init__(self, payload: bytes, good_bytes: int):
        super().__init__(payload)
        self._good_bytes = good_bytes

    def read(self, size=-1):
        if self.tell() >= self._good_bytes:
            raise OSError("simulated I/O error")
        return super().read(size)

    def readline(self, size=-1):
        if self.tell() >= self._good_bytes:
            raise OSError("simulated I/O error")
        return super().readline(size)


class TestCheckpointDurability:
    """The satellite fixes: atomic appends and a loss-minimizing loader."""

    def test_truncated_final_record_resumes_losslessly(self, tmp_path):
        """A kill -9 mid-append costs at most the final record: resume
        recomputes only that trial and stays bit-identical to serial."""
        checkpoint = str(tmp_path / "journal.pkl")
        log = str(tmp_path / "invocations.log")
        expected = ParallelTrialRunner(checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=21, labels=("tr",), trials=6
        )
        size = os.path.getsize(checkpoint)
        with open(checkpoint, "r+b") as handle:
            handle.truncate(size - 7)  # chop the last record mid-pickle
        resumed = ParallelTrialRunner(2, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=21, labels=("tr",), trials=6
        )
        assert resumed == expected
        assert resumed == [make_rng(21, "tr", i).random() for i in range(6)]
        with open(log, encoding="utf8") as handle:
            invocations = handle.read().splitlines()
        assert len(invocations) == 7  # 6 original + only the chopped trial

    def test_tail_repair_unshadows_future_appends(self, tmp_path):
        """Loading past a corrupt tail truncates it, so later appends do
        not land behind unreadable garbage and vanish on the next scan."""
        checkpoint = str(tmp_path / "journal.pkl")
        run_key = (1, ("k",))
        assert _append_checkpoint(checkpoint, run_key, 0, "a")
        good_size = os.path.getsize(checkpoint)
        with open(checkpoint, "ab") as handle:
            handle.write(b"\x80\x04garbage-from-a-kill-9")
        assert _load_checkpoint(checkpoint, run_key) == {0: "a"}
        assert os.path.getsize(checkpoint) == good_size  # tail repaired
        assert _append_checkpoint(checkpoint, run_key, 1, "b")
        assert _load_checkpoint(checkpoint, run_key) == {0: "a", 1: "b"}

    def test_midstream_read_error_keeps_parsed_records(self, tmp_path, monkeypatch):
        """An OSError partway through the scan returns what was parsed --
        and never truncates: the unread remainder may be perfectly good."""
        checkpoint = str(tmp_path / "journal.pkl")
        run_key = (2, ("m",))
        for index in range(3):
            assert _append_checkpoint(checkpoint, run_key, index, index * 10)
        payload = open(checkpoint, "rb").read()
        first_len = len(pickle.dumps((run_key, 0, 0)))

        def flaky_open(file, mode="r", *args, **kwargs):
            assert file == checkpoint and mode == "rb"
            return _FlakyHandle(payload, first_len)

        monkeypatch.setattr(parallel, "open", flaky_open, raising=False)
        assert _load_checkpoint(checkpoint, run_key) == {0: 0}
        monkeypatch.undo()
        # The file was left alone: a healthy re-read recovers everything.
        assert os.path.getsize(checkpoint) == len(payload)
        assert _load_checkpoint(checkpoint, run_key) == {0: 0, 1: 10, 2: 20}

    def test_unpicklable_value_writes_no_partial_record(self, tmp_path):
        """Serialization failures leave the journal byte-identical: the
        old open-then-pickle order left partial records behind."""
        checkpoint = str(tmp_path / "journal.pkl")
        run_key = (3, ("u",))
        assert _append_checkpoint(checkpoint, run_key, 0, 1.5)
        size = os.path.getsize(checkpoint)
        assert not _append_checkpoint(checkpoint, run_key, 1, Unpicklable())
        assert os.path.getsize(checkpoint) == size  # not even one byte
        assert _append_checkpoint(checkpoint, run_key, 2, 2.5)
        assert _load_checkpoint(checkpoint, run_key) == {0: 1.5, 2: 2.5}


def stall_once(sentinel: str, rng: random.Random) -> float:
    """First trial to win the sentinel stalls; the rest finish fast.

    The stalled trial pins the in-order harvest loop, so faster trials
    with higher indices finish un-journaled -- exactly the window the
    graceful signal drain exists to close.  On a resume the sentinel
    already exists, so the task runs instantly (the draw happens first
    either way, keeping results bit-identical).
    """
    value = rng.random()
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        time.sleep(0.05)
        return value
    os.close(fd)
    time.sleep(6)
    return value


class TestRunKeyProvenance:
    """The checkpoint key is the (seed, labels, git_sha) triple: records
    written under any *other* triple must be ignored, never reused."""

    def _fixed_sha(self, monkeypatch, value):
        from repro.obs import provenance

        monkeypatch.setattr(provenance, "git_sha", lambda short=False: value)

    def _count(self, log):
        if not os.path.exists(log):
            return 0
        with open(log, encoding="utf8") as handle:
            return len(handle.read().splitlines())

    def test_same_sha_resume_recomputes_nothing(self, tmp_path, monkeypatch):
        self._fixed_sha(monkeypatch, "sha-one")
        checkpoint = str(tmp_path / "journal.pkl")
        log = str(tmp_path / "invocations.log")
        first = ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=5, labels=("prov",), trials=4
        )
        assert self._count(log) == 4
        again = ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=5, labels=("prov",), trials=4
        )
        assert again == first
        assert self._count(log) == 4  # everything served from the journal

    def test_different_sha_ignores_stale_checkpoint(self, tmp_path, monkeypatch):
        """A journal written by one source tree must not satisfy a resume
        from another: the code that produced those trials is not the
        code resuming them."""
        self._fixed_sha(monkeypatch, "sha-one")
        checkpoint = str(tmp_path / "journal.pkl")
        log = str(tmp_path / "invocations.log")
        first = ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=5, labels=("prov",), trials=4
        )
        self._fixed_sha(monkeypatch, "sha-two")
        second = ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=5, labels=("prov",), trials=4
        )
        # Recomputed from scratch (stale records ignored) -- but still
        # bit-identical, because trial RNGs derive from (seed, labels, i).
        assert self._count(log) == 8
        assert second == first

    def test_different_seed_or_labels_ignores_checkpoint(self, tmp_path, monkeypatch):
        self._fixed_sha(monkeypatch, "sha-one")
        checkpoint = str(tmp_path / "journal.pkl")
        log = str(tmp_path / "invocations.log")
        ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=5, labels=("prov",), trials=3
        )
        ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=6, labels=("prov",), trials=3
        )
        assert self._count(log) == 6  # other seed: all recomputed
        ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=5, labels=("other",), trials=3
        )
        assert self._count(log) == 9  # other labels: all recomputed
        # The original triple still resumes for free.
        ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=5, labels=("prov",), trials=3
        )
        assert self._count(log) == 9


class TestPoolExhaustion:
    def test_pool_exhausted_raises_typed_error(self, tmp_path):
        """With serial_fallback off, exhausting the retry budget raises
        PoolExhaustedError carrying exactly the missing trial indices."""
        from repro.core.parallel import PoolExhaustedError

        runner = ParallelTrialRunner(
            2, pool_retries=1, pool_backoff=0.0, serial_fallback=False
        )
        with pytest.raises(PoolExhaustedError) as info:
            runner.map_trials(crash_every_worker, seed=11, labels=("px",), trials=4)
        assert info.value.rounds == 2
        assert set(info.value.missing) <= set(range(4))
        assert info.value.missing  # at least one trial never completed

    def test_backoff_is_exponential_with_bounded_jitter(self):
        runner = ParallelTrialRunner(2, pool_backoff=0.25)
        for round_index in range(4):
            base = 0.25 * (2.0 ** round_index)
            for _ in range(16):
                value = runner._retry_backoff(round_index)
                assert base * 0.5 <= value < base * 1.5

    def test_zero_backoff_disables_sleep(self):
        runner = ParallelTrialRunner(2, pool_backoff=0.0)
        assert runner._retry_backoff(3) == 0.0

    def test_worker_retry_event_carries_backoff(self, tmp_path):
        from repro.obs.metrics import MetricsRecorder

        recorder = MetricsRecorder()
        sentinel = str(tmp_path / "crash-once")
        runner = ParallelTrialRunner(2, pool_backoff=0.01, recorder=recorder)
        results = runner.map_trials(
            partial(crash_worker_once, sentinel), seed=13, labels=("ev",), trials=4
        )
        assert results == [make_rng(13, "ev", i).random() for i in range(4)]
        retries = recorder.events_of("worker-retry")
        assert retries
        assert retries[0]["backoff_seconds"] >= 0.0
        assert retries[0]["round"] == 1


class TestGracefulSignalDrain:
    """SIGTERM/SIGINT inside a checkpointed run drains completed trials
    into the journal before re-raising -- a polite kill wastes nothing."""

    def test_sigterm_converts_to_systemexit_and_restores_handler(self, tmp_path):
        import signal

        checkpoint = str(tmp_path / "journal.pkl")
        runner = ParallelTrialRunner(1, checkpoint=checkpoint)
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(SystemExit) as info:
            with runner._graceful_signal_scope():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # interrupted by delivery
        assert info.value.code == 128 + signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) is before

    def test_scope_is_noop_without_checkpoint(self):
        import signal

        runner = ParallelTrialRunner(1)
        before = signal.getsignal(signal.SIGINT)
        with runner._graceful_signal_scope():
            assert signal.getsignal(signal.SIGINT) is before

    def test_sigint_drains_completed_trials_then_resume_is_identical(self, tmp_path):
        """Kill a pooled run while one straggler pins the harvest loop:
        the faster trials must land in the journal, and a resume must
        complete with results bit-identical to an uninterrupted run."""
        import signal
        import threading

        checkpoint = str(tmp_path / "journal.pkl")
        sentinel = str(tmp_path / "stall-once")
        task = partial(stall_once, sentinel)
        expected = [make_rng(17, "drain", i).random() for i in range(6)]

        timer = threading.Timer(
            1.5, lambda: os.kill(os.getpid(), signal.SIGINT)
        )
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                ParallelTrialRunner(2, checkpoint=checkpoint).map_trials(
                    task, seed=17, labels=("drain",), trials=6
                )
        finally:
            timer.cancel()
        from repro.obs import provenance

        run_key = (17, ("drain",), provenance.git_sha())
        drained = _load_checkpoint(checkpoint, run_key)
        assert drained  # the fast trials were saved, not wasted
        for index, value in drained.items():
            assert value == expected[index]
        resumed = ParallelTrialRunner(2, checkpoint=checkpoint).map_trials(
            task, seed=17, labels=("drain",), trials=6
        )
        assert resumed == expected


class TestAppendDegradation:
    """ENOSPC/EIO on the checkpoint journal: one warning, in-memory
    continuation, self-clearing degraded flag (never an exception)."""

    def _fail_writes_to(self, monkeypatch, path):
        import errno

        real_write = os.write

        def failing_write(fd, data):
            try:
                target = os.readlink(f"/proc/self/fd/{fd}")
            except OSError:
                target = ""
            if target == path:
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", failing_write)

    def test_full_disk_degrades_to_one_warning_and_recovers(
        self, tmp_path, monkeypatch, caplog
    ):
        from repro.core.parallel import checkpoint_degraded

        checkpoint = str(tmp_path / "journal.pkl")
        self._fail_writes_to(monkeypatch, checkpoint)
        with caplog.at_level("WARNING", logger="repro.parallel"):
            results = ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
                draw_uniform, seed=19, labels=("enospc",), trials=5
            )
        # The run itself is unharmed; only durability degraded.
        assert results == [make_rng(19, "enospc", i).random() for i in range(5)]
        assert checkpoint_degraded(checkpoint)
        warned = [
            record for record in caplog.records if "write failed" in record.message
        ]
        assert len(warned) == 1  # five failing appends, one warning
        monkeypatch.undo()
        # The disk "recovers": the next run journals again and the
        # degraded flag self-clears -- the journal is self-stabilizing.
        again = ParallelTrialRunner(1, checkpoint=checkpoint).map_trials(
            draw_uniform, seed=19, labels=("enospc",), trials=5
        )
        assert again == results
        assert not checkpoint_degraded(checkpoint)
        from repro.obs import provenance

        run_key = (19, ("enospc",), provenance.git_sha())
        assert _load_checkpoint(checkpoint, run_key) == dict(enumerate(results))
