"""Tests for the process-pool trial runner.

The contract under test: results are bit-identical whether trials run
serially or across worker processes, because each trial's RNG is derived
inside the worker from the same ``(seed, *labels, index)`` path -- and
that contract survives task errors, worker crashes, timeouts and
checkpoint/resume.
"""

import io
import multiprocessing
import os
import pickle
import random
import time
from functools import partial

import pytest

from repro.core import parallel
from repro.core.parallel import (
    ParallelTrialRunner,
    TrialTaskError,
    TrialTimeoutError,
    _append_checkpoint,
    _load_checkpoint,
)
from repro.core.rng import make_rng
from repro.experiments.common import repeat_convergence
from repro.protocols.cai_izumi_wada import SilentNStateSSR


def draw_uniform(rng: random.Random) -> float:
    """Top-level (picklable) trial task."""
    return rng.random()


def scaled_draw(scale: float, rng: random.Random) -> float:
    return scale * rng.random()


def make_ciw(n: int) -> SilentNStateSSR:
    return SilentNStateSSR(n)


def worst_case_states(protocol, rng):
    return protocol.worst_case_configuration()


def fail_if_matches(target: float, rng: random.Random) -> float:
    """Fails exactly on the trial whose first draw equals ``target``."""
    value = rng.random()
    if value == target:
        raise ValueError("boom")
    return value


def slow_draw(delay: float, rng: random.Random) -> float:
    time.sleep(delay)
    return rng.random()


def crash_worker_once(sentinel: str, rng: random.Random) -> float:
    """Kills its worker process the first time any trial reaches it.

    The sentinel file doubles as an atomic once-flag and as evidence
    (for the test) that a crash really happened.
    """
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return rng.random()
    os.close(fd)
    os._exit(1)


def crash_every_worker(rng: random.Random) -> float:
    """Kills any worker it runs in; computes normally in-process."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return rng.random()


def logging_draw(path: str, rng: random.Random) -> float:
    """Draws and appends to ``path`` -- an invocation counter for tests."""
    value = rng.random()
    with open(path, "a", encoding="utf8") as handle:
        handle.write(f"{value}\n")
    return value


class TestParallelTrialRunner:
    def test_trial_rngs_match_serial_derivation(self):
        results = ParallelTrialRunner().map_trials(
            draw_uniform, seed=9, labels=("t",), trials=5
        )
        expected = [make_rng(9, "t", i).random() for i in range(5)]
        assert results == expected

    def test_parallel_results_equal_serial(self):
        serial = ParallelTrialRunner(1).map_trials(
            partial(scaled_draw, 10.0), seed=3, labels=("p", 7), trials=8
        )
        parallel = ParallelTrialRunner(2).map_trials(
            partial(scaled_draw, 10.0), seed=3, labels=("p", 7), trials=8
        )
        assert serial == parallel

    def test_scalar_label_is_equivalent_to_singleton_path(self):
        scalar = ParallelTrialRunner().map_trials(
            draw_uniform, seed=4, labels="lbl", trials=3
        )
        tupled = ParallelTrialRunner().map_trials(
            draw_uniform, seed=4, labels=("lbl",), trials=3
        )
        assert scalar == tupled

    def test_unpicklable_task_falls_back_to_serial(self):
        runner = ParallelTrialRunner(4)
        results = runner.map_trials(
            lambda rng: rng.random(), seed=5, labels=("fb",), trials=4
        )
        expected = [make_rng(5, "fb", i).random() for i in range(4)]
        assert results == expected

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelTrialRunner(0)

    def test_repeat_convergence_parallel_matches_serial(self):
        kwargs = dict(
            make_protocol=partial(make_ciw, 6),
            make_states=worst_case_states,
            seed=6,
            label="rc",
            trials=4,
            max_time=10_000.0,
        )
        serial = repeat_convergence(**kwargs)
        parallel = repeat_convergence(
            runner=ParallelTrialRunner(2), **kwargs
        )
        assert serial == parallel
        assert all(outcome.converged for outcome in serial)

    def test_invalid_timeout_and_retries(self):
        with pytest.raises(ValueError):
            ParallelTrialRunner(timeout=0)
        with pytest.raises(ValueError):
            ParallelTrialRunner(pool_retries=-1)


class TestFaultTolerance:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_task_error_carries_trial_index(self, workers):
        target = make_rng(8, "err", 2).random()
        with pytest.raises(TrialTaskError) as info:
            ParallelTrialRunner(workers).map_trials(
                partial(fail_if_matches, target), seed=8, labels=("err",), trials=4
            )
        assert info.value.index == 2
        assert "ValueError: boom" in str(info.value)
        assert "ValueError" in info.value.remote_traceback

    def test_per_trial_timeout(self):
        runner = ParallelTrialRunner(2, timeout=0.25)
        with pytest.raises(TrialTimeoutError) as info:
            runner.map_trials(
                partial(slow_draw, 3.0), seed=9, labels=("slow",), trials=2
            )
        assert info.value.index == 0
        assert info.value.timeout == 0.25

    def test_worker_crash_retries_only_missing_trials(self, tmp_path):
        """A mid-run worker crash loses no completed trials and the final
        results are bit-identical to a fault-free serial run."""
        sentinel = str(tmp_path / "crashed")
        results = ParallelTrialRunner(2).map_trials(
            partial(crash_worker_once, sentinel),
            seed=12,
            labels=("crash",),
            trials=6,
        )
        assert os.path.exists(sentinel)  # a worker really died
        expected = [make_rng(12, "crash", i).random() for i in range(6)]
        assert results == expected

    def test_pool_exhaustion_falls_back_to_serial(self):
        """When every round breaks the pool, trials still finish serially."""
        results = ParallelTrialRunner(2, pool_retries=1).map_trials(
            crash_every_worker, seed=13, labels=("hopeless",), trials=3
        )
        assert results == [make_rng(13, "hopeless", i).random() for i in range(3)]

    def test_checkpoint_resume_skips_finished_trials(self, tmp_path):
        checkpoint = str(tmp_path / "journal.pkl")
        log = str(tmp_path / "invocations.log")
        task = partial(logging_draw, log)
        first = ParallelTrialRunner(checkpoint=checkpoint).map_trials(
            task, seed=14, labels=("ckpt",), trials=3
        )
        resumed = ParallelTrialRunner(checkpoint=checkpoint).map_trials(
            task, seed=14, labels=("ckpt",), trials=5
        )
        assert resumed[:3] == first
        assert resumed == [make_rng(14, "ckpt", i).random() for i in range(5)]
        with open(log, encoding="utf8") as handle:
            invocations = handle.read().splitlines()
        assert len(invocations) == 5  # trials 0-2 were never recomputed

    def test_checkpoint_distinguishes_run_keys(self, tmp_path):
        checkpoint = str(tmp_path / "journal.pkl")
        runner = ParallelTrialRunner(checkpoint=checkpoint)
        a = runner.map_trials(draw_uniform, seed=1, labels=("a",), trials=2)
        b = runner.map_trials(draw_uniform, seed=2, labels=("b",), trials=2)
        assert a != b
        assert runner.map_trials(draw_uniform, seed=1, labels=("a",), trials=2) == a

    def test_checkpoint_tolerates_truncated_tail(self, tmp_path):
        checkpoint = str(tmp_path / "journal.pkl")
        runner = ParallelTrialRunner(checkpoint=checkpoint)
        expected = runner.map_trials(draw_uniform, seed=15, labels=("t",), trials=3)
        with open(checkpoint, "ab") as handle:
            handle.write(b"\x80garbage-from-a-kill-9")
        assert (
            runner.map_trials(draw_uniform, seed=15, labels=("t",), trials=3)
            == expected
        )

    def test_pooled_run_writes_checkpoint(self, tmp_path):
        checkpoint = str(tmp_path / "journal.pkl")
        pooled = ParallelTrialRunner(2, checkpoint=checkpoint).map_trials(
            draw_uniform, seed=16, labels=("pc",), trials=4
        )
        # A later serial runner resumes purely from the journal.
        log_free = ParallelTrialRunner(checkpoint=checkpoint).map_trials(
            draw_uniform, seed=16, labels=("pc",), trials=4
        )
        assert pooled == log_free == [
            make_rng(16, "pc", i).random() for i in range(4)
        ]


class Unpicklable:
    """Raises from __reduce__ -- what a live object with an open handle does."""

    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


class _FlakyHandle(io.BytesIO):
    """A file whose reads fail with OSError past a byte limit."""

    def __init__(self, payload: bytes, good_bytes: int):
        super().__init__(payload)
        self._good_bytes = good_bytes

    def read(self, size=-1):
        if self.tell() >= self._good_bytes:
            raise OSError("simulated I/O error")
        return super().read(size)

    def readline(self, size=-1):
        if self.tell() >= self._good_bytes:
            raise OSError("simulated I/O error")
        return super().readline(size)


class TestCheckpointDurability:
    """The satellite fixes: atomic appends and a loss-minimizing loader."""

    def test_truncated_final_record_resumes_losslessly(self, tmp_path):
        """A kill -9 mid-append costs at most the final record: resume
        recomputes only that trial and stays bit-identical to serial."""
        checkpoint = str(tmp_path / "journal.pkl")
        log = str(tmp_path / "invocations.log")
        expected = ParallelTrialRunner(checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=21, labels=("tr",), trials=6
        )
        size = os.path.getsize(checkpoint)
        with open(checkpoint, "r+b") as handle:
            handle.truncate(size - 7)  # chop the last record mid-pickle
        resumed = ParallelTrialRunner(2, checkpoint=checkpoint).map_trials(
            partial(logging_draw, log), seed=21, labels=("tr",), trials=6
        )
        assert resumed == expected
        assert resumed == [make_rng(21, "tr", i).random() for i in range(6)]
        with open(log, encoding="utf8") as handle:
            invocations = handle.read().splitlines()
        assert len(invocations) == 7  # 6 original + only the chopped trial

    def test_tail_repair_unshadows_future_appends(self, tmp_path):
        """Loading past a corrupt tail truncates it, so later appends do
        not land behind unreadable garbage and vanish on the next scan."""
        checkpoint = str(tmp_path / "journal.pkl")
        run_key = (1, ("k",))
        assert _append_checkpoint(checkpoint, run_key, 0, "a")
        good_size = os.path.getsize(checkpoint)
        with open(checkpoint, "ab") as handle:
            handle.write(b"\x80\x04garbage-from-a-kill-9")
        assert _load_checkpoint(checkpoint, run_key) == {0: "a"}
        assert os.path.getsize(checkpoint) == good_size  # tail repaired
        assert _append_checkpoint(checkpoint, run_key, 1, "b")
        assert _load_checkpoint(checkpoint, run_key) == {0: "a", 1: "b"}

    def test_midstream_read_error_keeps_parsed_records(self, tmp_path, monkeypatch):
        """An OSError partway through the scan returns what was parsed --
        and never truncates: the unread remainder may be perfectly good."""
        checkpoint = str(tmp_path / "journal.pkl")
        run_key = (2, ("m",))
        for index in range(3):
            assert _append_checkpoint(checkpoint, run_key, index, index * 10)
        payload = open(checkpoint, "rb").read()
        first_len = len(pickle.dumps((run_key, 0, 0)))

        def flaky_open(file, mode="r", *args, **kwargs):
            assert file == checkpoint and mode == "rb"
            return _FlakyHandle(payload, first_len)

        monkeypatch.setattr(parallel, "open", flaky_open, raising=False)
        assert _load_checkpoint(checkpoint, run_key) == {0: 0}
        monkeypatch.undo()
        # The file was left alone: a healthy re-read recovers everything.
        assert os.path.getsize(checkpoint) == len(payload)
        assert _load_checkpoint(checkpoint, run_key) == {0: 0, 1: 10, 2: 20}

    def test_unpicklable_value_writes_no_partial_record(self, tmp_path):
        """Serialization failures leave the journal byte-identical: the
        old open-then-pickle order left partial records behind."""
        checkpoint = str(tmp_path / "journal.pkl")
        run_key = (3, ("u",))
        assert _append_checkpoint(checkpoint, run_key, 0, 1.5)
        size = os.path.getsize(checkpoint)
        assert not _append_checkpoint(checkpoint, run_key, 1, Unpicklable())
        assert os.path.getsize(checkpoint) == size  # not even one byte
        assert _append_checkpoint(checkpoint, run_key, 2, 2.5)
        assert _load_checkpoint(checkpoint, run_key) == {0: 1.5, 2: 2.5}
