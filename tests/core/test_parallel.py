"""Tests for the process-pool trial runner.

The contract under test: results are bit-identical whether trials run
serially or across worker processes, because each trial's RNG is derived
inside the worker from the same ``(seed, *labels, index)`` path.
"""

import random
from functools import partial

import pytest

from repro.core.parallel import ParallelTrialRunner
from repro.core.rng import make_rng
from repro.experiments.common import repeat_convergence
from repro.protocols.cai_izumi_wada import SilentNStateSSR


def draw_uniform(rng: random.Random) -> float:
    """Top-level (picklable) trial task."""
    return rng.random()


def scaled_draw(scale: float, rng: random.Random) -> float:
    return scale * rng.random()


def make_ciw(n: int) -> SilentNStateSSR:
    return SilentNStateSSR(n)


def worst_case_states(protocol, rng):
    return protocol.worst_case_configuration()


class TestParallelTrialRunner:
    def test_trial_rngs_match_serial_derivation(self):
        results = ParallelTrialRunner().map_trials(
            draw_uniform, seed=9, labels=("t",), trials=5
        )
        expected = [make_rng(9, "t", i).random() for i in range(5)]
        assert results == expected

    def test_parallel_results_equal_serial(self):
        serial = ParallelTrialRunner(1).map_trials(
            partial(scaled_draw, 10.0), seed=3, labels=("p", 7), trials=8
        )
        parallel = ParallelTrialRunner(2).map_trials(
            partial(scaled_draw, 10.0), seed=3, labels=("p", 7), trials=8
        )
        assert serial == parallel

    def test_scalar_label_is_equivalent_to_singleton_path(self):
        scalar = ParallelTrialRunner().map_trials(
            draw_uniform, seed=4, labels="lbl", trials=3
        )
        tupled = ParallelTrialRunner().map_trials(
            draw_uniform, seed=4, labels=("lbl",), trials=3
        )
        assert scalar == tupled

    def test_unpicklable_task_falls_back_to_serial(self):
        runner = ParallelTrialRunner(4)
        results = runner.map_trials(
            lambda rng: rng.random(), seed=5, labels=("fb",), trials=4
        )
        expected = [make_rng(5, "fb", i).random() for i in range(4)]
        assert results == expected

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelTrialRunner(0)

    def test_repeat_convergence_parallel_matches_serial(self):
        kwargs = dict(
            make_protocol=partial(make_ciw, 6),
            make_states=worst_case_states,
            seed=6,
            label="rc",
            trials=4,
            max_time=10_000.0,
        )
        serial = repeat_convergence(**kwargs)
        parallel = repeat_convergence(
            runner=ParallelTrialRunner(2), **kwargs
        )
        assert serial == parallel
        assert all(outcome.converged for outcome in serial)
