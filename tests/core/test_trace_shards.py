"""Tests for worker-level trace shards and deterministic shard merging.

The contracts: when the ambient recorder carries a trace, every trial
(serial *and* pooled) records into its own shard keyed by the trial's
``(seed, *labels, index)`` span; the parent's merged trace is
byte-identical between a 1-worker and an N-worker run of the same
seed; trial results stay bit-identical to an unrecorded run (recording
consumes no engine randomness); and with no trace attached nothing is
written at all.
"""

import glob
import json
import os
import random

from repro.core.parallel import ParallelTrialRunner
from repro.core.rng import make_rng
from repro.obs import (
    MetricsRecorder,
    TraceWriter,
    iter_trace,
    merge_trace_shards,
    read_trace,
    recording,
    shard_path,
    span_id,
    validate_spans,
    validate_trace,
)
from repro.obs.context import current_recorder


def sampling_draw(rng: random.Random) -> float:
    """A trial that records samples and an event via the ambient recorder."""
    recorder = current_recorder()
    total = 0.0
    for step in range(4):
        value = rng.random()
        total += value
        if recorder is not None:
            recorder.sample(t=float(step), leaders=int(value * 3), rank_coverage=value)
    if recorder is not None:
        recorder.event("convergence", total=round(total, 6))
    return total


def _traced_run(tmp_path, workers: int, *, trials: int = 6, profile: bool = False):
    """Run ``sampling_draw`` under a traced recorder; returns (path, results)."""
    path = str(tmp_path / f"trace_w{workers}.jsonl")
    writer = TraceWriter(path)
    recorder = MetricsRecorder(sample_every=1, trace=writer, profile=profile)
    with recording(recorder):
        results = ParallelTrialRunner(workers).map_trials(
            sampling_draw, seed=99, labels=("shards",), trials=trials
        )
    writer.close()
    return path, results


def _body(path: str) -> bytes:
    """Trace bytes after the header line (the header carries a timestamp)."""
    with open(path, "rb") as handle:
        return handle.read().split(b"\n", 1)[1]


class TestSpanHelpers:
    def test_span_id_is_seed_labels_index(self):
        assert span_id(7, ("chaos", 64), 3) == "7:chaos/64:3"

    def test_shard_path_is_zero_padded(self):
        assert shard_path("/tmp/t.jsonl", 4) == "/tmp/t.jsonl.shard-00004.jsonl"


class TestShardMergeDeterminism:
    def test_parallel_merge_byte_identical_to_serial(self, tmp_path):
        serial_path, serial_results = _traced_run(tmp_path, 1)
        parallel_path, parallel_results = _traced_run(tmp_path, 2)
        assert serial_results == parallel_results
        assert _body(serial_path) == _body(parallel_path)
        assert len(_body(serial_path)) > 0

    def test_results_bit_identical_to_untraced_run(self, tmp_path):
        """Recording consumes no engine randomness."""
        _, traced = _traced_run(tmp_path, 2)
        untraced = ParallelTrialRunner(2).map_trials(
            sampling_draw, seed=99, labels=("shards",), trials=6
        )
        assert traced == untraced

    def test_merged_records_carry_spans_in_trial_order(self, tmp_path):
        path, _ = _traced_run(tmp_path, 2, trials=3)
        spans = [record["span"] for record in read_trace(path) if "span" in record]
        assert spans == sorted(spans)
        assert spans[0] == span_id(99, ("shards",), 0)
        assert spans[-1] == span_id(99, ("shards",), 2)
        assert validate_trace(path) == []

    def test_shards_stay_on_disk_for_postmortems(self, tmp_path):
        path, _ = _traced_run(tmp_path, 2, trials=3)
        shards = sorted(glob.glob(path + ".shard-*.jsonl"))
        assert len(shards) == 3
        header = read_trace(shards[0])[0]
        assert header["span"] == span_id(99, ("shards",), 0)
        assert header["trial"] == 0

    def test_event_counts_survive_the_merge(self, tmp_path):
        path, _ = _traced_run(tmp_path, 2, trials=6)
        events = [r for r in read_trace(path) if r.get("type") == "event"]
        assert len(events) == 6
        assert all(event["kind"] == "convergence" for event in events)

    def test_profile_mode_adds_per_trial_aggregates(self, tmp_path):
        path, _ = _traced_run(tmp_path, 2, trials=3, profile=True)
        aggregates = [r for r in read_trace(path) if r.get("type") == "aggregate"]
        assert [record["trial"] for record in aggregates] == [0, 1, 2]


class TestTrialSpans:
    def test_merged_trace_carries_wellformed_trial_spans(self, tmp_path):
        path, _ = _traced_run(tmp_path, 2, trials=3)
        records = read_trace(path)
        spans = [r for r in records if r.get("type") == "span"]
        assert len(spans) == 6  # begin + end per trial
        assert validate_spans(records) == []
        begins = [r for r in spans if r["op"] == "begin"]
        assert [r["id"] for r in begins] == [
            span_id(99, ("shards",), index) for index in range(3)
        ]
        # A bare CLI run has no service job/attempt above the trials.
        assert all("parent" not in r for r in begins)
        assert all(r["kind"] == "trial" for r in begins)

    def test_span_stream_identical_serial_vs_pooled(self, tmp_path):
        """Covered byte-for-byte by the merge test above; this pins the
        span subset specifically so a regression names the culprit."""
        serial_path, _ = _traced_run(tmp_path, 1, trials=4)
        parallel_path, _ = _traced_run(tmp_path, 2, trials=4)
        def spans(path):
            return [r for r in read_trace(path) if r.get("type") == "span"]
        assert spans(serial_path) == spans(parallel_path)

    def test_profile_mode_times_trial_spans(self, tmp_path):
        path, _ = _traced_run(tmp_path, 2, trials=2, profile=True)
        ends = [r for r in read_trace(path)
                if r.get("type") == "span" and r["op"] == "end"]
        assert all(r["wall_seconds"] >= 0.0 for r in ends)
        assert all(r["status"] == "ok" for r in ends)

    def test_plain_mode_spans_carry_no_wallclock(self, tmp_path):
        path, _ = _traced_run(tmp_path, 2, trials=2)
        spans = [r for r in read_trace(path) if r.get("type") == "span"]
        assert all("wall_seconds" not in r for r in spans)


class TestKeepShards:
    def _run(self, tmp_path, *, keep_shards, name):
        path = str(tmp_path / f"trace_{name}.jsonl")
        writer = TraceWriter(path)
        recorder = MetricsRecorder(
            sample_every=1, trace=writer, keep_shards=keep_shards
        )
        with recording(recorder):
            ParallelTrialRunner(2).map_trials(
                sampling_draw, seed=99, labels=("shards",), trials=3
            )
        writer.close()
        return path

    def test_no_keep_shards_removes_files_after_merge(self, tmp_path):
        path = self._run(tmp_path, keep_shards=False, name="drop")
        assert glob.glob(path + ".shard-*.jsonl") == []
        assert validate_trace(path) == []

    def test_merged_trace_identical_either_way(self, tmp_path):
        kept = self._run(tmp_path, keep_shards=True, name="keep")
        dropped = self._run(tmp_path, keep_shards=False, name="drop")
        assert _body(kept) == _body(dropped)
        assert len(glob.glob(kept + ".shard-*.jsonl")) == 3


class TestZeroCostWhenOff:
    def test_no_trace_no_shards(self, tmp_path):
        """A recorder without a trace never touches the filesystem."""
        recorder = MetricsRecorder(sample_every=4)
        with recording(recorder):
            ParallelTrialRunner(2).map_trials(
                sampling_draw, seed=5, labels=("off",), trials=4
            )
        assert glob.glob(str(tmp_path / "*")) == []

    def test_no_recorder_is_the_seed_behavior(self):
        results = ParallelTrialRunner(2).map_trials(
            sampling_draw, seed=5, labels=("off",), trials=4
        )
        expected = [sampling_draw(make_rng(5, "off", i)) for i in range(4)]
        assert results == expected


class TestMergeTraceShards:
    def test_merges_bodies_and_attaches_span(self, tmp_path):
        shard_paths = []
        for index in range(2):
            path = shard_path(str(tmp_path / "main.jsonl"), index)
            writer = TraceWriter(path, header_extra={"span": f"s:{index}"})
            writer.write("sample", {"t": 0.0, "leaders": index})
            writer.close()
            shard_paths.append(path)
        merged_path = str(tmp_path / "main.jsonl")
        writer = TraceWriter(merged_path)
        merged = merge_trace_shards(writer, shard_paths)
        writer.close()
        assert merged == 2
        records = [r for r in read_trace(merged_path) if r.get("type") == "sample"]
        assert [record["span"] for record in records] == ["s:0", "s:1"]

    def test_missing_shard_skipped(self, tmp_path):
        path = shard_path(str(tmp_path / "main.jsonl"), 0)
        writer = TraceWriter(path, header_extra={"span": "s:0"})
        writer.write("event", {"kind": "x"})
        writer.close()
        out = str(tmp_path / "main.jsonl")
        writer = TraceWriter(out)
        merged = merge_trace_shards(writer, [path, str(tmp_path / "absent.jsonl")])
        writer.close()
        assert merged == 1


class TestStreamingIterTrace:
    def test_iter_matches_read(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path)
        for step in range(5):
            writer.write("sample", {"t": float(step), "leaders": step})
        writer.close()
        assert list(iter_trace(path)) == read_trace(path)

    def test_damaged_line_skipped(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path)
        writer.write("sample", {"t": 0.0})
        writer.close()
        with open(path, "a") as handle:
            handle.write("{torn\n")
        records = list(iter_trace(path))
        assert len(records) == 2  # header + sample; torn line dropped


class TestHeaderStamp:
    def test_header_carries_provenance_and_extras(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        TraceWriter(path, header_extra={"span": "a:b:0"}).close()
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header["type"] == "header"
        assert header["schema_version"] == 1
        assert header["span"] == "a:b:0"
        assert "created_unix" in header
        if header.get("git_sha"):
            assert len(header["git_sha"]) == 40

    def test_shard_files_removable_after_merge(self, tmp_path):
        """Shards are plain files next to the parent trace; cleanup is
        the caller's call (they are kept for postmortems by design)."""
        path, _ = _traced_run(tmp_path, 2, trials=2)
        for shard in glob.glob(path + ".shard-*.jsonl"):
            os.remove(shard)
        assert validate_trace(path) == []
