"""Smoke tests: every shipped example runs to completion.

Examples are user-facing documentation; a broken one is a broken
README.  Each is executed in-process (runpy) with stdout captured and
its key claims asserted on the output.  ``time_space_tradeoff`` sweeps
four protocol variants and takes minutes, so it gets a structural
import check instead of a full run.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / f"{name}.py"), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Unique leader elected" in out
        assert "silent" in out

    def test_sensor_network_recovery(self, capsys):
        out = run_example("sensor_network_recovery", capsys)
        assert out.count("recovered in") == 5
        assert "FAULT BURST 5: 24/24" in out

    def test_protocol_composition(self, capsys):
        out = run_example("protocol_composition", capsys)
        assert "every agent runs version 42" in out
        assert "Healed end-to-end" in out

    def test_reset_walkthrough(self, capsys):
        out = run_example("reset_walkthrough", capsys)
        assert "reset wave" in out
        assert "dormant election" in out
        assert "stabilized: unique ranking" in out

    def test_time_space_tradeoff_imports_and_helpers(self):
        """Full run sweeps four protocols (minutes); check the pieces."""
        sys.path.insert(0, str(EXAMPLES))
        try:
            import importlib

            module = importlib.import_module("time_space_tradeoff")
            assert module.ciw_time() > 0  # the cheap cell runs for real
        finally:
            sys.path.pop(0)
            sys.modules.pop("time_space_tradeoff", None)
