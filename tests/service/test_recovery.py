"""Crash-recovery proof for the service (the PR's acceptance criterion).

A real ``repro serve`` subprocess is killed with SIGKILL mid-job; a
restarted server must re-admit the job from the journal, resume the
sweep from the trial checkpoint (recomputing only the missing trials),
and produce a result *bit-identical* to the direct CLI path.  A
duplicate ``(spec, seed, sha)`` submission afterwards must be served
from the result cache with zero trial executions.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.service import client

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: Multi-trial sweep: long enough that SIGKILL reliably lands mid-run,
#: small enough to finish quickly on resume.
JOB_SPEC = {"protocols": ["ciw"], "ns": [16], "trials": 8, "seed": 101}
TRIALS = JOB_SPEC["trials"]


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_server(port, store_root, ledger_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--store", store_root,
            "--ledger", ledger_path,
            # Two worker loops: the kill -9 proof must hold with
            # concurrent execution, not just the single-worker case.
            "--jobs", "2",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    base_url = f"http://127.0.0.1:{port}"
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(f"server died on startup: rc={process.returncode}")
        try:
            client.get_health(base_url, timeout=2)
            return process, base_url
        except OSError:
            time.sleep(0.1)
    process.kill()
    raise RuntimeError("server did not come up within 30s")


@pytest.mark.slow
def test_kill9_resume_bit_identical_and_cached(tmp_path):
    store_root = str(tmp_path / "service")
    ledger_path = str(tmp_path / "ledger.jsonl")
    port = _free_port()

    # -- first life: submit, wait for the first checkpointed trial, kill -9
    process, base_url = _start_server(port, store_root, ledger_path)
    try:
        document = client.submit_job(base_url, "chaos", JOB_SPEC)
        job_id = document["id"]
        checkpoint = os.path.join(store_root, "checkpoints", f"{job_id}.pkl")
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if os.path.exists(checkpoint) and os.path.getsize(checkpoint) > 0:
                break
            time.sleep(0.05)
        else:
            pytest.fail("no trial reached the checkpoint journal in time")
    finally:
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)

    # Appends are single os.write calls, so whatever the kill left
    # behind is whole records: at least one trial survived the crash.
    killed_size = os.path.getsize(checkpoint)
    assert killed_size > 0

    # -- second life: the journal re-admits the job, the checkpoint
    # resumes the sweep, and the job completes.
    process, base_url = _start_server(port, store_root, ledger_path)
    try:
        recovered = client.get_job(base_url, job_id)
        assert recovered["state"] in ("queued", "running", "retrying", "done")
        final = client.wait_for_job(base_url, job_id, timeout=300)
        assert final["state"] == "done"
        assert final["ok"] is True
        result = client.get_result(base_url, job_id)

        # Resume recomputed only the missing trials: the second life
        # journaled strictly fewer trials than the sweep holds.
        resumed_writes = final["event_counts"]["checkpoint-write"]
        assert 0 < resumed_writes < TRIALS

        # Bit-identical to the direct (uninterrupted) CLI path.
        sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
        try:
            from repro.experiments.chaos import run_chaos
        finally:
            sys.path.pop(0)
        direct = run_chaos(
            protocols=JOB_SPEC["protocols"],
            ns=JOB_SPEC["ns"],
            trials=JOB_SPEC["trials"],
            seed=JOB_SPEC["seed"],
        )
        assert json.dumps(result["result"], sort_keys=True) == json.dumps(
            direct.to_json(), sort_keys=True
        )

        # -- dedupe half of the criterion: an identical submission is
        # served from the result cache with zero trial executions.
        journal = os.path.join(store_root, "jobs.jsonl")
        running_before = _count_running(journal, job_id)
        checkpoint_size_before = os.path.getsize(checkpoint)
        duplicate = client.submit_job(base_url, "chaos", dict(JOB_SPEC))
        assert duplicate["id"] == job_id
        assert duplicate["state"] == "done"
        # No new execution: no new running transition, no new trial
        # journaled, and the served document still carries the resumed
        # run's event counts.
        assert _count_running(journal, job_id) == running_before
        assert os.path.getsize(checkpoint) == checkpoint_size_before
        served = client.get_result(base_url, job_id)
        assert served == result
    finally:
        process.terminate()
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=15)


def _count_running(journal_path, job_id):
    count = 0
    with open(journal_path, encoding="utf8") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("job") == job_id and record.get("state") == "running":
                count += 1
    return count


@pytest.mark.slow
def test_restart_after_clean_completion_serves_cache(tmp_path):
    """A restarted server serves a previously completed job from the
    result cache: recovery covers terminal history, not just live work."""
    store_root = str(tmp_path / "service")
    ledger_path = str(tmp_path / "ledger.jsonl")
    port = _free_port()
    spec = {"protocols": ["ciw"], "ns": [8], "trials": 2, "seed": 33}

    process, base_url = _start_server(port, store_root, ledger_path)
    try:
        document = client.submit_job(base_url, "chaos", spec)
        final = client.wait_for_job(base_url, document["id"], timeout=300)
        assert final["state"] == "done"
        result = client.get_result(base_url, document["id"])
    finally:
        process.terminate()
        process.wait(timeout=15)

    process, base_url = _start_server(port, store_root, ledger_path)
    try:
        recovered = client.get_job(base_url, document["id"])
        assert recovered["state"] == "done"
        assert client.get_result(base_url, document["id"]) == result
        # Resubmission is answered instantly from history.
        duplicate = client.submit_job(base_url, "chaos", dict(spec))
        assert duplicate["id"] == document["id"]
        assert duplicate["state"] == "done"
    finally:
        process.terminate()
        process.wait(timeout=15)
