"""Tests for job specs and the manager (:mod:`repro.service.jobs`).

Contracts: payload validation is strict and canonicalization is
order-insensitive, the cache key is the provenance triple, submission is
idempotent, admission control bounds the queue, retryable failures back
off under a budget while deterministic errors fail fast, and journaled
jobs are re-admitted on restart.
"""

import asyncio

import pytest

from repro.service.jobs import (
    AdmissionError,
    JobManager,
    JobSpec,
    JobValidationError,
)
from repro.service.store import JobStore


def run(coro):
    return asyncio.run(coro)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(JobValidationError, match="kind"):
            JobSpec.from_payload({"kind": "deploy", "spec": {}})

    def test_non_object_payload_rejected(self):
        with pytest.raises(JobValidationError, match="JSON object"):
            JobSpec.from_payload([1, 2, 3])

    def test_unknown_parameter_rejected(self):
        with pytest.raises(JobValidationError, match="unknown parameter"):
            JobSpec.from_payload({"kind": "chaos", "spec": {"speed": 11}})

    def test_wrong_type_rejected(self):
        with pytest.raises(JobValidationError, match="must be"):
            JobSpec.from_payload({"kind": "chaos", "spec": {"trials": "three"}})

    def test_boolean_is_not_an_int(self):
        with pytest.raises(JobValidationError, match="boolean"):
            JobSpec.from_payload({"kind": "chaos", "spec": {"seed": True}})

    def test_unknown_experiment_rejected(self):
        with pytest.raises(JobValidationError, match="unknown experiment"):
            JobSpec.from_payload({"kind": "run", "spec": {"experiment": "table9"}})

    def test_unknown_protocol_rejected(self):
        with pytest.raises(JobValidationError, match="unknown protocol"):
            JobSpec.from_payload({"kind": "chaos", "spec": {"protocols": ["nope"]}})

    def test_unknown_adversary_rejected(self):
        with pytest.raises(JobValidationError, match="unknown adversary"):
            JobSpec.from_payload({"kind": "chaos", "spec": {"adversary": "gremlin"}})

    def test_bench_requires_suite(self):
        with pytest.raises(JobValidationError, match="suite"):
            JobSpec.from_payload({"kind": "bench", "spec": {}})

    def test_defaults_applied(self):
        spec = JobSpec.from_payload({"kind": "chaos", "spec": {}})
        assert spec.params["trials"] == 3
        assert spec.params["protocols"] == ["ciw", "optimal-silent"]
        assert spec.seed == spec.params["seed"]


class TestCacheKey:
    def test_key_order_insensitive(self):
        a = JobSpec.from_payload(
            {"kind": "chaos", "spec": {"ns": [16], "trials": 2}}
        )
        b = JobSpec.from_payload(
            {"kind": "chaos", "spec": {"trials": 2, "ns": [16]}}
        )
        assert a.cache_key("sha") == b.cache_key("sha")

    def test_explicit_defaults_share_identity(self):
        a = JobSpec.from_payload({"kind": "chaos", "spec": {}})
        b = JobSpec.from_payload({"kind": "chaos", "spec": {"trials": 3}})
        assert a.cache_key("sha") == b.cache_key("sha")

    def test_seed_and_sha_change_identity(self):
        a = JobSpec.from_payload({"kind": "chaos", "spec": {"seed": 1}})
        b = JobSpec.from_payload({"kind": "chaos", "spec": {"seed": 2}})
        assert a.cache_key("sha") != b.cache_key("sha")
        assert a.cache_key("sha-one") != a.cache_key("sha-two")


class TestManager:
    def _payload(self, **spec):
        return {"kind": "chaos",
                "spec": {"protocols": ["ciw"], "ns": [8], "trials": 1, **spec}}

    def test_submit_is_idempotent(self, tmp_path):
        async def body():
            manager = JobManager(JobStore(str(tmp_path)))
            job, created = manager.submit(self._payload())
            dup, dup_created = manager.submit(self._payload())
            assert created and not dup_created
            assert dup is job
            return True

        assert run(body())

    def test_admission_control_raises_with_retry_after(self, tmp_path):
        async def body():
            manager = JobManager(JobStore(str(tmp_path)), max_queue=2)
            manager.submit(self._payload(seed=1))
            manager.submit(self._payload(seed=2))
            with pytest.raises(AdmissionError) as info:
                manager.submit(self._payload(seed=3))
            assert info.value.retry_after >= 1.0
            return True

        assert run(body())

    def test_invalid_payload_never_queued(self, tmp_path):
        async def body():
            manager = JobManager(JobStore(str(tmp_path)))
            with pytest.raises(JobValidationError):
                manager.submit({"kind": "chaos", "spec": {"trials": 0}})
            assert manager.queue_depth() == 0
            return True

        assert run(body())

    def test_retryable_failure_backs_off_then_fails_at_budget(
        self, tmp_path, monkeypatch
    ):
        """PoolExhaustedError retries with backoff under the budget;
        exhausting it turns the job terminal with the retry history
        journaled."""
        from repro.core.parallel import PoolExhaustedError
        from repro.service import jobs as jobs_mod

        calls = []

        def always_exhausted(spec, *, checkpoint=None, recorder=None):
            calls.append(1)
            raise PoolExhaustedError([0, 1], rounds=3)

        monkeypatch.setattr(jobs_mod, "execute_spec", always_exhausted)

        async def body():
            store = JobStore(str(tmp_path))
            manager = JobManager(
                store, retry_budget=3, backoff_base=0.01, backoff_cap=0.05
            )
            await manager.start()
            try:
                job, _ = manager.submit(self._payload())
                for _ in range(400):
                    if job.terminal:
                        break
                    await asyncio.sleep(0.02)
                assert job.state == "failed"
                assert "retry budget exhausted" in job.error
                assert len(calls) == 3
            finally:
                await manager.stop()
            states = [record["state"] for record in store.iter_journal()
                      if record.get("job") == job.id]
            assert states.count("retrying") == 2
            assert states[-1] == "failed"
            return True

        assert run(body())

    def test_deterministic_error_fails_fast_no_retry(self, tmp_path, monkeypatch):
        from repro.service import jobs as jobs_mod

        calls = []

        def always_boom(spec, *, checkpoint=None, recorder=None):
            calls.append(1)
            raise ValueError("task bug")

        monkeypatch.setattr(jobs_mod, "execute_spec", always_boom)

        async def body():
            manager = JobManager(JobStore(str(tmp_path)), retry_budget=3)
            await manager.start()
            try:
                job, _ = manager.submit(self._payload())
                for _ in range(200):
                    if job.terminal:
                        break
                    await asyncio.sleep(0.02)
                assert job.state == "failed"
                assert "ValueError" in job.error
                assert len(calls) == 1  # no retry for a deterministic bug
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_job_timeout_fails_the_job(self, tmp_path, monkeypatch):
        import time as time_mod

        from repro.service import jobs as jobs_mod

        def slow(spec, *, checkpoint=None, recorder=None):
            time_mod.sleep(5)
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", slow)

        async def body():
            manager = JobManager(JobStore(str(tmp_path)), job_timeout=0.2)
            await manager.start()
            try:
                job, _ = manager.submit(self._payload())
                for _ in range(200):
                    if job.terminal:
                        break
                    await asyncio.sleep(0.05)
                assert job.state == "failed"
                assert "timeout" in job.error
            finally:
                await manager.stop()
            return True

        assert run(body())


class TestRecovery:
    def _payload(self, **spec):
        return {"kind": "chaos",
                "spec": {"protocols": ["ciw"], "ns": [8], "trials": 1, **spec}}

    def test_live_jobs_readmitted_on_restart(self, tmp_path, monkeypatch):
        """A journal holding queued/running jobs re-enters them on
        start(); terminal jobs come back as history, not work."""
        from repro.service import jobs as jobs_mod

        executed = []

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            executed.append(spec.params["seed"])
            return {"ok": True, "result": {"seed": spec.params["seed"]}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def first_life():
            store = JobStore(str(tmp_path))
            manager = JobManager(store)
            # Journal two live jobs and one terminal one by hand, as a
            # crashed process would have left them.
            for seed, state in ((1, "queued"), (2, "running")):
                spec = JobSpec.from_payload(self._payload(seed=seed))
                key = spec.cache_key()
                store.append({"job": f"job-{key[:16]}", "state": "queued",
                              "payload": {"kind": spec.kind, "spec": spec.params},
                              "cache_key": key, "ts": 0.0})
                if state == "running":
                    store.append({"job": f"job-{key[:16]}", "state": "running",
                                  "attempt": 1, "ts": 1.0})
            spec = JobSpec.from_payload(self._payload(seed=3))
            key = spec.cache_key()
            store.append({"job": f"job-{key[:16]}", "state": "queued",
                          "payload": {"kind": spec.kind, "spec": spec.params},
                          "cache_key": key, "ts": 0.0})
            store.append({"job": f"job-{key[:16]}", "state": "failed",
                          "error": "old", "ts": 1.0})
            return manager

        async def second_life():
            store = JobStore(str(tmp_path))
            manager = JobManager(store)
            recovered = await manager.start()
            try:
                assert recovered == 2  # both live jobs, not the failed one
                live = [job for job in manager.jobs.values()
                        if not job.terminal]
                for _ in range(400):
                    if all(job.terminal for job in manager.jobs.values()):
                        break
                    await asyncio.sleep(0.02)
                assert sorted(executed) == [1, 2]
                assert all(job.state == "done" for job in live)
                # The failed job is visible as history.
                failed = [job for job in manager.jobs.values()
                          if job.state == "failed"]
                assert len(failed) == 1
            finally:
                await manager.stop()
            return True

        run(first_life())
        assert run(second_life())

    def test_cancelled_job_recovers_as_history_not_work(
        self, tmp_path, monkeypatch
    ):
        """A journaled ``cancelled`` state is terminal: restart shows
        the job as history and never re-executes it, but the identity
        stays resubmittable."""
        from repro.service import jobs as jobs_mod

        executed = []

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            executed.append(spec.params["seed"])
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        store = JobStore(str(tmp_path))
        spec = JobSpec.from_payload(self._payload(seed=4))
        key = spec.cache_key()
        job_id = f"job-{key[:16]}"
        store.append({"job": job_id, "state": "queued",
                      "payload": {"kind": spec.kind, "spec": spec.params},
                      "cache_key": key, "ts": 0.0})
        store.append({"job": job_id, "state": "cancelled",
                      "reason": "client request", "ts": 1.0})

        async def body():
            manager = JobManager(JobStore(str(tmp_path)))
            recovered = await manager.start()
            try:
                assert recovered == 0  # cancelled is terminal
                job = manager.get(job_id)
                assert job is not None and job.state == "cancelled"
                assert executed == []
                # Resubmitting the same work starts a fresh attempt.
                fresh, created = manager.submit(self._payload(seed=4))
                assert created and fresh.id == job_id
                for _ in range(200):
                    if fresh.terminal:
                        break
                    await asyncio.sleep(0.02)
                assert fresh.state == "done"
                assert executed == [4]
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_completed_job_served_from_cache_zero_executions(
        self, tmp_path, monkeypatch
    ):
        """The acceptance criterion's dedupe half: a duplicate
        (spec, seed, sha) submission after restart is served from the
        result cache without executing anything."""
        from repro.service import jobs as jobs_mod

        executed = []

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            executed.append(1)
            if recorder is not None:
                recorder.event("trial-ran")
            return {"ok": True, "result": {"value": 42}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def first_life():
            manager = JobManager(JobStore(str(tmp_path)))
            await manager.start()
            try:
                job, _ = manager.submit(self._payload(seed=9))
                for _ in range(200):
                    if job.terminal:
                        break
                    await asyncio.sleep(0.02)
                assert job.state == "done"
                assert job.event_counts.get("trial-ran") == 1
            finally:
                await manager.stop()

        async def second_life():
            manager = JobManager(JobStore(str(tmp_path)))
            await manager.start()
            try:
                job, created = manager.submit(self._payload(seed=9))
                # Recovered as terminal history: not even re-queued.
                assert not created
                assert job.state == "done"
                assert job.result["result"] == {"value": 42}
            finally:
                await manager.stop()
            return True

        run(first_life())
        count_after_first = len(executed)
        assert run(second_life())
        assert len(executed) == count_after_first  # zero new executions


class TestSpanTelemetry:
    """Causal spans attached by the manager, and the counters they feed.

    Contracts: a completed job publishes a well-formed span stream
    (job -> attempt -> ... all closed ``ok``), a cancelled mid-run job
    closes every open span ``cancelled`` on the way out, a retried job
    closes its first attempt ``retried`` and re-begins the same job
    identity, and the manager's telemetry registry counts the
    lifecycle as monotone Prometheus counters.
    """

    def _payload(self, **spec):
        return {"kind": "chaos",
                "spec": {"protocols": ["ciw"], "ns": [8], "trials": 1, **spec}}

    @staticmethod
    def _span_records(job):
        return [record for _, record in job.events
                if record.get("type") == "span"]

    def test_completed_job_has_wellformed_span_stream(
        self, tmp_path, monkeypatch
    ):
        from repro.obs import build_span_tree, validate_spans
        from repro.service import jobs as jobs_mod

        monkeypatch.setattr(
            jobs_mod, "execute_spec",
            lambda spec, *, checkpoint=None, recorder=None:
                {"ok": True, "result": {}},
        )

        async def body():
            manager = JobManager(JobStore(str(tmp_path)))
            await manager.start()
            try:
                job, _ = manager.submit(self._payload(seed=11))
                for _ in range(200):
                    if job.terminal:
                        break
                    await asyncio.sleep(0.02)
                assert job.state == "done"
                spans = self._span_records(job)
                assert validate_spans(spans) == []
                roots, by_id = build_span_tree(spans)
                assert [node.span_id for node in roots] == [job.id]
                assert roots[0].kind == "job"
                assert roots[0].status == "ok"
                (attempt,) = roots[0].children
                assert attempt.kind == "attempt"
                assert attempt.span_id == f"{job.id}/a1"
                assert attempt.status == "ok"
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_cancelled_job_closes_open_spans(self, tmp_path, monkeypatch):
        import threading

        from repro.obs import validate_spans
        from repro.service import jobs as jobs_mod

        progressed = threading.Event()

        def slow_execute(spec, *, checkpoint=None, recorder=None):
            for index in range(1000):
                recorder.event("tick", index=index)  # cancellation point
                if index >= 2:
                    progressed.set()
                import time as time_mod
                time_mod.sleep(0.01)
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", slow_execute)

        async def body():
            manager = JobManager(JobStore(str(tmp_path)))
            await manager.start()
            try:
                job, _ = manager.submit(self._payload(seed=12))

                def ready():
                    return progressed.is_set()

                for _ in range(400):
                    if ready():
                        break
                    await asyncio.sleep(0.02)
                manager.cancel(job.id)
                for _ in range(400):
                    if job.terminal:
                        break
                    await asyncio.sleep(0.02)
                assert job.state == "cancelled"
                spans = self._span_records(job)
                assert validate_spans(spans) == []  # nothing dangling
                ends = [r for r in spans if r.get("op") == "end"]
                assert ends, "cancel must close the open spans"
                assert all(r["status"] == "cancelled" for r in ends)
                # Innermost-first unwind: attempt closes before job.
                assert [r["kind"] for r in ends] == ["attempt", "job"]
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_retried_job_reopens_same_identity(self, tmp_path, monkeypatch):
        from repro.core.parallel import PoolExhaustedError
        from repro.obs import validate_spans
        from repro.service import jobs as jobs_mod

        calls = []

        def flaky(spec, *, checkpoint=None, recorder=None):
            calls.append(1)
            if len(calls) == 1:
                raise PoolExhaustedError([0], rounds=3)
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", flaky)

        async def body():
            manager = JobManager(
                JobStore(str(tmp_path)), retry_budget=3,
                backoff_base=0.01, backoff_cap=0.05,
            )
            await manager.start()
            try:
                job, _ = manager.submit(self._payload(seed=13))
                for _ in range(400):
                    if job.terminal:
                        break
                    await asyncio.sleep(0.02)
                assert job.state == "done"
                spans = self._span_records(job)
                assert validate_spans(spans) == []
                ends = [r for r in spans if r.get("op") == "end"]
                # Attempt 1 unwound as retried, attempt 2 completed ok.
                assert [(r["kind"], r["status"]) for r in ends] == [
                    ("attempt", "retried"), ("job", "retried"),
                    ("attempt", "ok"), ("job", "ok"),
                ]
                begins = [r for r in spans if r.get("op") == "begin"]
                assert [r["id"] for r in begins] == [
                    job.id, f"{job.id}/a1", job.id, f"{job.id}/a2",
                ]
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_lifecycle_feeds_telemetry_counters(self, tmp_path, monkeypatch):
        from repro.obs import TelemetryRegistry
        from repro.service import jobs as jobs_mod

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            recorder.event("convergence")
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def body():
            registry = TelemetryRegistry()
            manager = JobManager(JobStore(str(tmp_path)), telemetry=registry)
            await manager.start()
            try:
                job, _ = manager.submit(self._payload(seed=14))
                manager.submit(self._payload(seed=14))  # dedupe
                for _ in range(200):
                    if job.terminal:
                        break
                    await asyncio.sleep(0.02)
                assert job.state == "done"
            finally:
                await manager.stop()
            assert registry.value(
                "repro_jobs_submitted_total", {"kind": "chaos"}) == 1
            assert registry.value("repro_jobs_deduplicated_total") == 1
            assert registry.value(
                "repro_jobs_completed_total", {"kind": "chaos"}) == 1
            assert registry.value(
                "repro_recorder_events_total", {"kind": "convergence"}) == 1
            assert registry.value("repro_jobs", {"state": "done"}) == 1
            assert registry.value("repro_queue_depth") == 0
            return True

        assert run(body())
