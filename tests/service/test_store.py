"""Tests for the durable job store (:mod:`repro.service.store`).

Contracts: journal appends are atomic lines that fold back into per-job
state oldest-first, a torn tail never corrupts recovery, result-cache
publication is atomic, and every write path degrades instead of raising.
"""

import json
import os

from repro.service.store import JOURNAL_SCHEMA_VERSION, JobStore


class TestJournal:
    def test_append_stamps_schema_version(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert store.append({"job": "job-a", "state": "queued"})
        record = next(store.iter_journal())
        assert record["journal_version"] == JOURNAL_SCHEMA_VERSION
        assert record["state"] == "queued"

    def test_recover_folds_transitions_last_state_wins(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append({"job": "job-a", "state": "queued",
                      "payload": {"kind": "chaos", "spec": {}}})
        store.append({"job": "job-a", "state": "running", "attempt": 1})
        store.append({"job": "job-b", "state": "queued"})
        store.append({"job": "job-a", "state": "done", "wall_seconds": 1.5})
        recovered = store.recover()
        assert recovered["job-a"]["state"] == "done"
        assert recovered["job-a"]["attempt"] == 1  # earlier fields persist
        assert recovered["job-a"]["payload"] == {"kind": "chaos", "spec": {}}
        assert recovered["job-b"]["state"] == "queued"

    def test_torn_tail_skipped_not_fatal(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append({"job": "job-a", "state": "queued"})
        with open(store.journal_path, "a", encoding="utf8") as handle:
            handle.write('{"job": "job-b", "state": "que')  # kill -9 mid-append
        # The torn line is lost; the healthy record and all later
        # appends (healed by the newline repair) survive.
        store.append({"job": "job-c", "state": "queued"})
        recovered = store.recover()
        assert set(recovered) == {"job-a", "job-c"}

    def test_unserializable_record_degrades(self, tmp_path):
        store = JobStore(str(tmp_path))
        loop = []
        loop.append(loop)
        assert store.append({"job": "job-a", "bad": loop}) is False
        assert not os.path.exists(store.journal_path)


class TestResultCache:
    def test_write_then_load_roundtrip(self, tmp_path):
        store = JobStore(str(tmp_path))
        document = {"cache_key": "k" * 64, "ok": True, "result": {"cells": [1, 2]}}
        assert store.write_result("k" * 64, document)
        assert store.load_result("k" * 64) == document

    def test_missing_result_is_none(self, tmp_path):
        assert JobStore(str(tmp_path)).load_result("absent" * 10) is None

    def test_publication_is_atomic_no_temp_residue(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.write_result("a" * 64, {"ok": True})
        names = os.listdir(store.results_dir)
        assert names == [f"{'a' * 64}.json"]

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        store = JobStore(str(tmp_path))
        with open(store.result_path("b" * 64), "w", encoding="utf8") as handle:
            handle.write("{half a json docum")
        assert store.load_result("b" * 64) is None

    def test_unserializable_result_flips_degraded(self, tmp_path):
        store = JobStore(str(tmp_path))
        loop = []
        loop.append(loop)
        assert store.write_result("c" * 64, {"bad": loop}) is False
        assert store.degraded
        assert any("result-cache" in reason for reason in store.degraded_reasons())
        # A later good write self-clears the flag.
        assert store.write_result("c" * 64, {"ok": True})
        assert not store.degraded


class TestDegradedReporting:
    def test_journal_failure_reported_and_self_clears(self, tmp_path, monkeypatch):
        import errno

        store = JobStore(str(tmp_path))
        real_write = os.write

        def failing_write(fd, data):
            try:
                target = os.readlink(f"/proc/self/fd/{fd}")
            except OSError:
                target = ""
            if target == store.journal_path:
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", failing_write)
        assert store.append({"job": "job-a", "state": "queued"}) is False
        assert store.degraded
        assert any("journal" in reason for reason in store.degraded_reasons())
        monkeypatch.undo()
        assert store.append({"job": "job-a", "state": "queued"})
        assert not store.degraded

    def test_checkpoint_paths_are_per_job(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert store.checkpoint_path("job-a") != store.checkpoint_path("job-b")
        assert store.checkpoint_path("job-a").endswith("job-a.pkl")


class TestJournalIsJsonl:
    def test_every_line_parses_standalone(self, tmp_path):
        store = JobStore(str(tmp_path))
        for index in range(5):
            store.append({"job": f"job-{index}", "state": "queued"})
        with open(store.journal_path, encoding="utf8") as handle:
            for line in handle:
                json.loads(line)
