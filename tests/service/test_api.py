"""Tests for the HTTP API (:mod:`repro.service.api`).

A real server on an ephemeral port, driven through the blocking client
(:mod:`repro.service.client`) -- the same pairing ``repro submit`` and
the CI smoke use, so client and server are tested as one contract.
"""

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.service import client
from repro.service.api import serve


class ServerFixture:
    """One service instance on its own event-loop thread."""

    def __init__(self, root, **kwargs):
        self.root = str(root)
        self.kwargs = kwargs
        self.base_url = None
        self._thread = None
        self._loop = None
        self._task = None

    def start(self):
        ready = threading.Event()
        box = []

        def run_loop():
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            aready = asyncio.Event()

            async def main():
                self._task = self._loop.create_task(
                    serve(host="127.0.0.1", port=0, store_root=self.root,
                          ledger_path=f"{self.root}/ledger.jsonl",
                          ready=aready, server_box=box, **self.kwargs)
                )
                await aready.wait()
                ready.set()
                try:
                    await self._task
                except asyncio.CancelledError:
                    pass

            self._loop.run_until_complete(main())
            self._loop.close()

        self._thread = threading.Thread(target=run_loop, daemon=True)
        self._thread.start()
        assert ready.wait(15), "server did not come up"
        server = box[0]
        self.base_url = f"http://{server.host}:{server.port}"
        return self

    def stop(self):
        if self._loop is not None and self._task is not None:
            self._loop.call_soon_threadsafe(self._task.cancel)
        if self._thread is not None:
            self._thread.join(timeout=10)


@pytest.fixture
def server(tmp_path):
    fixture = ServerFixture(tmp_path / "service").start()
    yield fixture
    fixture.stop()


SMALL_CHAOS = {"protocols": ["ciw"], "ns": [8], "trials": 1, "seed": 5}


class TestRoutes:
    def test_healthz_reports_ok(self, server):
        health = client.get_health(server.base_url)
        assert health["status"] == "ok"
        assert health["degraded_reasons"] == []
        assert health["queue_depth"] == 0
        assert "version" in health

    def test_submit_accepted_then_done(self, server):
        document = client.submit_job(server.base_url, "chaos", SMALL_CHAOS)
        assert document["state"] in ("queued", "running", "done")
        assert document["id"].startswith("job-")
        final = client.wait_for_job(server.base_url, document["id"], timeout=120)
        assert final["state"] == "done"
        assert final["ok"] is True
        result = client.get_result(server.base_url, document["id"])
        assert result["result"]["cells"][0]["protocol"] == "ciw"

    def test_duplicate_submission_returns_same_job(self, server):
        first = client.submit_job(server.base_url, "chaos", SMALL_CHAOS)
        shuffled = {"seed": 5, "trials": 1, "ns": [8], "protocols": ["ciw"]}
        second = client.submit_job(server.base_url, "chaos", shuffled)
        assert second["id"] == first["id"]

    def test_validation_error_is_400(self, server):
        with pytest.raises(client.ServiceClientError) as info:
            client.submit_job(server.base_url, "chaos", {"protocols": ["nope"]})
        assert info.value.status == 400
        assert "unknown protocol" in str(info.value)

    def test_unknown_job_is_404(self, server):
        with pytest.raises(client.ServiceClientError) as info:
            client.get_job(server.base_url, "job-doesnotexist")
        assert info.value.status == 404

    def test_unknown_route_is_404(self, server):
        with pytest.raises(client.ServiceClientError) as info:
            client._request(server.base_url, "/nope")
        assert info.value.status == 404

    def test_result_before_done_is_404(self, server):
        with pytest.raises(client.ServiceClientError) as info:
            client.get_result(server.base_url, "job-doesnotexist")
        assert info.value.status == 404

    def test_malformed_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.base_url + "/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_job_listing(self, server):
        client.submit_job(server.base_url, "chaos", SMALL_CHAOS)
        listing = client._request(server.base_url, "/jobs")
        assert len(listing["jobs"]) == 1
        assert "counts" in listing


class TestAdmissionControl:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        # A tiny queue and a job timeout keep this test fast: the point
        # is the 429, not the jobs.
        fixture = ServerFixture(tmp_path / "svc", max_queue=1).start()
        try:
            # Fill the queue faster than the worker drains it.
            seeds = iter(range(100))
            saw_429 = None
            for _ in range(20):
                try:
                    client.submit_job(
                        fixture.base_url, "chaos",
                        {**SMALL_CHAOS, "seed": next(seeds)},
                    )
                except client.QueueFullError as exc:
                    saw_429 = exc
                    break
            assert saw_429 is not None, "queue never filled"
            assert saw_429.retry_after >= 1.0
        finally:
            fixture.stop()


class TestCancellationRoutes:
    def test_delete_unknown_job_is_404(self, server):
        with pytest.raises(client.ServiceClientError) as info:
            client.cancel_job(server.base_url, "job-doesnotexist")
        assert info.value.status == 404

    def test_delete_terminal_job_is_409(self, server):
        document = client.submit_job(server.base_url, "chaos", SMALL_CHAOS)
        client.wait_for_job(server.base_url, document["id"], timeout=120)
        with pytest.raises(client.ServiceClientError) as info:
            client.cancel_job(server.base_url, document["id"])
        assert info.value.status == 409
        assert info.value.body["state"] == "done"

    def test_delete_mid_sweep_cancels_and_resubmission_resumes(
        self, tmp_path
    ):
        """The acceptance path end to end over HTTP: DELETE a chaos job
        mid-sweep, observe the journaled ``cancelled`` state, then
        resubmit the identical spec and watch it resume from the
        preserved checkpoint to a result bit-identical to an
        uninterrupted direct run."""
        fixture = ServerFixture(tmp_path / "svc").start()
        try:
            spec = {"protocols": ["ciw"], "ns": [16], "trials": 10,
                    "seed": 202}
            document = client.submit_job(fixture.base_url, "chaos", spec)
            job_id = document["id"]
            # The SSE stream tells us when the sweep has journaled its
            # first trial -- cancel lands mid-sweep, deterministically.
            for event in client.iter_events(
                fixture.base_url, job_id, timeout=120
            ):
                if event.get("kind") == "checkpoint-write":
                    break
            cancelled = client.cancel_job(fixture.base_url, job_id)
            assert cancelled["cancel_requested"] is True
            final = client.wait_for_job(fixture.base_url, job_id, timeout=120)
            assert final["state"] == "cancelled"
            # A second DELETE is a conflict: the job is already terminal.
            with pytest.raises(client.ServiceClientError) as info:
                client.cancel_job(fixture.base_url, job_id)
            assert info.value.status == 409
            assert info.value.body["state"] == "cancelled"
            checkpoint = tmp_path / "svc" / "checkpoints" / f"{job_id}.pkl"
            assert checkpoint.exists() and checkpoint.stat().st_size > 0
            # Same spec, same identity: the resubmission reuses the job
            # id and resumes from the checkpoint.
            resubmitted = client.submit_job(fixture.base_url, "chaos", spec)
            assert resubmitted["id"] == job_id
            final = client.wait_for_job(fixture.base_url, job_id, timeout=300)
            assert final["state"] == "done"
            # Fewer checkpoint writes than trials: the trials completed
            # before the cancel were never recomputed.
            assert 0 < final["event_counts"]["checkpoint-write"] < 10
            result = client.get_result(fixture.base_url, job_id)
            from repro.experiments.chaos import run_chaos

            direct = run_chaos(
                protocols=["ciw"], ns=[16], trials=10, seed=202
            )
            assert result["result"] == json.loads(
                json.dumps(direct.to_json(), default=str)
            )
        finally:
            fixture.stop()


class TestEventStream:
    def test_sse_replays_and_terminates(self, server):
        document = client.submit_job(server.base_url, "chaos", SMALL_CHAOS)
        client.wait_for_job(server.base_url, document["id"], timeout=120)
        events = list(
            client.iter_events(server.base_url, document["id"], timeout=30)
        )
        kinds = [event.get("type") for event in events]
        assert "state" in kinds  # lifecycle transitions present
        states = [event["state"] for event in events
                  if event.get("type") == "state"]
        assert states[-1] == "done"
        # Recorder events from the simulation rode along.
        recorder_kinds = {event.get("kind") for event in events
                          if event.get("type") == "event"}
        assert "checkpoint-write" in recorder_kinds

    def test_sse_content_type(self, server):
        document = client.submit_job(server.base_url, "chaos", SMALL_CHAOS)
        client.wait_for_job(server.base_url, document["id"], timeout=120)
        url = server.base_url + f"/jobs/{document['id']}/events"
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.headers["Content-Type"] == "text/event-stream"


class TestHealthDegradation:
    def test_degraded_journal_flips_healthz(self, tmp_path, monkeypatch):
        """A failing job journal reports degraded (compute-only) health
        instead of killing the service."""
        import errno
        import os

        fixture = ServerFixture(tmp_path / "svc").start()
        try:
            journal = str(tmp_path / "svc" / "jobs.jsonl")
            real_write = os.write

            def failing_write(fd, data):
                try:
                    target = os.readlink(f"/proc/self/fd/{fd}")
                except OSError:
                    target = ""
                if target == journal:
                    raise OSError(errno.ENOSPC, "No space left on device")
                return real_write(fd, data)

            monkeypatch.setattr(os, "write", failing_write)
            document = client.submit_job(
                fixture.base_url, "chaos", SMALL_CHAOS
            )
            final = client.wait_for_job(
                fixture.base_url, document["id"], timeout=120
            )
            # The job still completed -- compute survives the bad disk.
            assert final["state"] == "done"
            health = client.get_health(fixture.base_url)
            assert health["status"] == "degraded"
            assert any("journal" in reason
                       for reason in health["degraded_reasons"])
            monkeypatch.undo()
            # The next successful append self-clears the degradation.
            second = client.submit_job(
                fixture.base_url, "chaos", {**SMALL_CHAOS, "seed": 6}
            )
            client.wait_for_job(fixture.base_url, second["id"], timeout=120)
            health = client.get_health(fixture.base_url)
            assert health["status"] == "ok"
        finally:
            fixture.stop()

    def test_unrelated_degraded_paths_do_not_flip_healthz(self, tmp_path):
        """Health reflects the service's own write paths: a degraded
        ledger elsewhere in the process (a CLI run, another test) is not
        this server's problem."""
        from repro.obs.ledger import atomic_append_line, degraded_paths

        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        foreign = str(blocker / "ledger.jsonl")  # parent is a file
        assert atomic_append_line(foreign, "{}", label="ledger") is False
        assert foreign in degraded_paths()

        fixture = ServerFixture(tmp_path / "svc").start()
        try:
            health = client.get_health(fixture.base_url)
            assert health["status"] == "ok"
            assert health["degraded_reasons"] == []
        finally:
            fixture.stop()


class TestJsonResponses:
    def test_responses_are_json_with_length(self, server):
        with urllib.request.urlopen(server.base_url + "/healthz", timeout=10) as r:
            assert r.headers["Content-Type"] == "application/json"
            body = r.read()
            assert len(body) == int(r.headers["Content-Length"])
            json.loads(body)


class TestMetricsEndpoint:
    """``GET /metrics``: the Prometheus scrape surface.

    The process-wide registry is shared across server fixtures in one
    test process, so assertions are about *movement* (counters are
    monotone) and presence, never absolute values.
    """

    def test_metrics_is_valid_exposition_text(self, server):
        from repro.obs import parse_prometheus_text

        text = client.get_metrics(server.base_url)
        families = parse_prometheus_text(text)  # raises on malformed lines
        assert "repro_queue_depth" in families
        assert families["repro_queue_depth"]["type"] == "gauge"

    def test_metrics_content_type_is_prometheus_text(self, server):
        request = urllib.request.Request(server.base_url + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]

    def test_counters_move_across_a_job(self, server):
        from repro.obs import parse_prometheus_text

        def counter(families, name, **labels):
            family = families.get(name)
            if family is None:
                return 0.0
            return sum(
                value for key, value in family["samples"].items()
                if all(dict(key).get(k) == v for k, v in labels.items())
            )

        before = parse_prometheus_text(client.get_metrics(server.base_url))
        document = client.submit_job(server.base_url, "chaos", SMALL_CHAOS)
        client.wait_for_job(server.base_url, document["id"], timeout=120)
        after = parse_prometheus_text(client.get_metrics(server.base_url))
        submitted = "repro_jobs_submitted_total"
        completed = "repro_jobs_completed_total"
        assert counter(after, submitted, kind="chaos") == \
            counter(before, submitted, kind="chaos") + 1
        assert counter(after, completed, kind="chaos") == \
            counter(before, completed, kind="chaos") + 1
        assert counter(after, "repro_job_transitions_total") > \
            counter(before, "repro_job_transitions_total")

    def test_healthz_snapshots_telemetry(self, server):
        health = client.get_health(server.base_url)
        telemetry = health["telemetry"]
        assert "repro_queue_depth" in telemetry
        # Histograms stay on /metrics; the snapshot is counters/gauges.
        assert "repro_job_wall_seconds" not in telemetry
