"""Concurrent job execution (:mod:`repro.service.jobs` with N > 1).

Contracts under test, matching the PR-9 acceptance criteria:

* interleaved jobs record into disjoint metrics/event streams (the
  context-scoped ambient recorder never cross-wires);
* N concurrent real chaos jobs are bit-identical to direct serial
  ``run_chaos`` calls;
* cancellation -- a queued job cancels instantly and never executes, a
  running job unwinds at its next recorder hook with the checkpoint
  preserved, and resubmission resumes from that checkpoint;
* duplicate submission under concurrency still dedupes to one
  execution;
* a timed-out job does not block the next job's start;
* a retrying job waiting out its backoff does not delay unrelated
  queued jobs (head-of-line regression);
* priorities order the queue (FIFO within a priority) without
  splitting cache identity;
* admission is weighted and the Retry-After estimate counts retrying
  jobs.
"""

import asyncio
import os
import threading
import time

import pytest

from repro.service.jobs import (
    AdmissionError,
    JobManager,
    JobSpec,
)
from repro.service.store import JobStore


def run(coro):
    return asyncio.run(coro)


async def wait_until(predicate, timeout=30.0, interval=0.02):
    """Poll ``predicate`` on the event loop until true or timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def chaos_payload(**spec):
    return {"kind": "chaos",
            "spec": {"protocols": ["ciw"], "ns": [8], "trials": 1, **spec}}


class TestDisjointStreams:
    def test_interleaved_jobs_record_disjoint_event_streams(
        self, tmp_path, monkeypatch
    ):
        """Two jobs inside their recording scopes *at the same time*
        (barrier-enforced) each see only their own ambient recorder --
        the tentpole contract the module-global recorder violated."""
        from repro.service import jobs as jobs_mod

        barrier = threading.Barrier(2, timeout=15)

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            # Enter the same ambient scope the real execute_spec does,
            # then record through current_recorder() -- the exact path
            # a simulation engine takes.
            from repro.obs.context import current_recorder, recording

            seed = spec.params["seed"]
            with recording(recorder):
                barrier.wait()  # both jobs inside their scopes at once
                obs = current_recorder()
                assert obs is recorder, "ambient recorder leaked across jobs"
                for index in range(25):
                    obs.event(f"seed-{seed}", index=index)
                    time.sleep(0.001)  # force interleaving
            return {"ok": True, "result": {"seed": seed}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def body():
            manager = JobManager(JobStore(str(tmp_path)), concurrency=2)
            await manager.start()
            try:
                job_a, _ = manager.submit(chaos_payload(seed=1))
                job_b, _ = manager.submit(chaos_payload(seed=2))
                assert await wait_until(
                    lambda: job_a.terminal and job_b.terminal
                )
                assert job_a.state == "done" and job_b.state == "done"
                # Byte-disjoint streams: each job holds exactly its own
                # 25 events and nothing from its sibling.
                assert job_a.event_counts == {"seed-1": 25}
                assert job_b.event_counts == {"seed-2": 25}
                kinds_a = {record["kind"] for _, record in job_a.events
                           if record.get("type") == "event"}
                kinds_b = {record["kind"] for _, record in job_b.events
                           if record.get("type") == "event"}
                assert kinds_a == {"seed-1"} and kinds_b == {"seed-2"}
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_four_concurrent_chaos_jobs_bit_identical_to_direct_runs(
        self, tmp_path
    ):
        """The acceptance criterion: ``--jobs 4`` runs four real sweeps
        concurrently, each bit-identical to a direct serial
        ``run_chaos`` call, with per-job event streams matching a
        serial run exactly (hence disjoint)."""
        from repro.experiments.chaos import run_chaos
        from repro.obs.context import recording
        from repro.obs.metrics import MetricsRecorder

        seeds = [11, 12, 13, 14]
        expected = {}
        for seed in seeds:
            recorder = MetricsRecorder()
            with recording(recorder):
                result = run_chaos(
                    protocols=["ciw"], ns=[8], trials=1, seed=seed,
                    checkpoint=str(tmp_path / f"direct-{seed}.pkl"),
                )
            expected[seed] = {
                "result": result.to_json(),
                "event_counts": dict(recorder.event_counts),
            }

        async def body():
            manager = JobManager(
                JobStore(str(tmp_path / "svc")), concurrency=4
            )
            await manager.start()
            try:
                jobs = [
                    manager.submit(chaos_payload(seed=seed))[0]
                    for seed in seeds
                ]
                assert await wait_until(
                    lambda: all(job.terminal for job in jobs), timeout=240
                )
                for seed, job in zip(seeds, jobs):
                    assert job.state == "done", job.error
                    assert job.result["result"] == expected[seed]["result"]
                    assert job.event_counts == expected[seed]["event_counts"]
            finally:
                await manager.stop()
            return True

        assert run(body())


class TestCancellation:
    def test_cancel_queued_job_never_executes(self, tmp_path, monkeypatch):
        from repro.service import jobs as jobs_mod

        started = threading.Event()
        release = threading.Event()
        executed = []

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            executed.append(spec.params["seed"])
            if spec.params["seed"] == 1:
                started.set()
                release.wait(timeout=30)
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def body():
            store = JobStore(str(tmp_path))
            manager = JobManager(store, concurrency=1)
            await manager.start()
            try:
                blocker, _ = manager.submit(chaos_payload(seed=1))
                assert await wait_until(started.is_set)
                queued, _ = manager.submit(chaos_payload(seed=2))
                assert queued.state == "queued"
                cancelled = manager.cancel(queued.id)
                # Instant: no waiting for the running job to finish.
                assert cancelled is queued
                assert queued.state == "cancelled"
                states = [record["state"]
                          for record in store.iter_journal()
                          if record.get("job") == queued.id]
                assert states == ["queued", "cancelled"]
                release.set()
                assert await wait_until(lambda: blocker.terminal)
                assert executed == [1]  # the cancelled job never ran
                # Its weight is freed and its identity resubmittable.
                fresh, created = manager.submit(chaos_payload(seed=2))
                assert created
                assert await wait_until(lambda: fresh.terminal)
                assert fresh.state == "done"
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_cancel_running_job_drains_checkpoint_and_resumes(
        self, tmp_path, monkeypatch
    ):
        """Cancel lands mid-sweep via the recorder hook; completed
        trials stay in the checkpoint and a resubmission of the same
        work resumes exactly where the cancel landed."""
        from repro.service import jobs as jobs_mod

        progressed = threading.Event()
        finish_fast = threading.Event()
        TRIALS = 50

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            done = 0
            if os.path.exists(checkpoint):
                with open(checkpoint) as handle:
                    done = len(handle.read().splitlines())
            for index in range(done, TRIALS):
                # Journal the trial *before* the hook, like the real
                # runner: a cancel raised at the hook never loses it.
                with open(checkpoint, "a") as handle:
                    handle.write(f"trial-{index}\n")
                recorder.event("checkpoint-write", index=index)
                if index >= done + 2:
                    progressed.set()
                if not finish_fast.is_set():
                    time.sleep(0.01)
            return {"ok": True, "result": {"trials": TRIALS}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def body():
            store = JobStore(str(tmp_path))
            manager = JobManager(store, concurrency=1)
            await manager.start()
            try:
                job, _ = manager.submit(chaos_payload(seed=7))
                assert await wait_until(progressed.is_set)
                manager.cancel(job.id)
                assert await wait_until(lambda: job.terminal)
                assert job.state == "cancelled"
                states = [record["state"]
                          for record in store.iter_journal()
                          if record.get("job") == job.id]
                assert states[-1] == "cancelled"
                checkpoint = store.checkpoint_path(job.id)
                assert os.path.exists(checkpoint)
                with open(checkpoint) as handle:
                    before = handle.read().splitlines()
                assert 3 <= len(before) < TRIALS  # partial, preserved
                # Resubmission: same identity, resumes from the
                # checkpoint rather than starting over.
                finish_fast.set()
                resumed, created = manager.submit(chaos_payload(seed=7))
                assert created and resumed.id == job.id
                assert await wait_until(lambda: resumed.terminal)
                assert resumed.state == "done"
                with open(checkpoint) as handle:
                    after = handle.read().splitlines()
                assert len(after) == TRIALS
                assert after[: len(before)] == before  # never recomputed
                # The resumed attempt recorded only the missing trials.
                assert resumed.event_counts["checkpoint-write"] == (
                    TRIALS - len(before)
                )
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_cancel_unknown_and_terminal_jobs(self, tmp_path, monkeypatch):
        from repro.service import jobs as jobs_mod

        monkeypatch.setattr(
            jobs_mod, "execute_spec",
            lambda spec, *, checkpoint=None, recorder=None: {
                "ok": True, "result": {}
            },
        )

        async def body():
            manager = JobManager(JobStore(str(tmp_path)))
            await manager.start()
            try:
                assert manager.cancel("job-missing") is None
                job, _ = manager.submit(chaos_payload(seed=3))
                assert await wait_until(lambda: job.terminal)
                # Terminal: returned unchanged, no new journal state.
                assert manager.cancel(job.id) is job
                assert job.state == "done"
            finally:
                await manager.stop()
            return True

        assert run(body())


class TestScheduling:
    def test_duplicate_submission_under_concurrency_dedupes(
        self, tmp_path, monkeypatch
    ):
        from repro.service import jobs as jobs_mod

        executed = []

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            executed.append(spec.params["seed"])
            time.sleep(0.05)
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def body():
            manager = JobManager(JobStore(str(tmp_path)), concurrency=4)
            await manager.start()
            try:
                jobs = [manager.submit(chaos_payload(seed=5))
                        for _ in range(4)]
                first = jobs[0][0]
                assert all(job is first for job, _ in jobs)
                assert [created for _, created in jobs] == [
                    True, False, False, False
                ]
                assert await wait_until(lambda: first.terminal)
                assert executed == [5]  # one execution, four submissions
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_timed_out_job_does_not_block_next_job(
        self, tmp_path, monkeypatch
    ):
        """A timeout cannot kill the executor thread; the headroom in
        the pool means the orphaned thread must not delay the next
        job's start."""
        from repro.service import jobs as jobs_mod

        release = threading.Event()

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            if spec.params["seed"] == 1:
                release.wait(timeout=30)  # non-cooperative: ignores cancel
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def body():
            manager = JobManager(
                JobStore(str(tmp_path)), concurrency=1, job_timeout=0.2
            )
            await manager.start()
            try:
                stuck, _ = manager.submit(chaos_payload(seed=1))
                follower, _ = manager.submit(chaos_payload(seed=2))
                assert await wait_until(lambda: stuck.terminal, timeout=10)
                assert stuck.state == "failed"
                assert "timeout" in stuck.error
                assert stuck.cancel_requested  # flagged to unwind
                # The follower completes while the orphaned thread is
                # still parked on its event.
                assert await wait_until(lambda: follower.terminal, timeout=10)
                assert follower.state == "done"
            finally:
                release.set()
                await manager.stop()
            return True

        assert run(body())

    def test_retrying_job_does_not_delay_queued_job(
        self, tmp_path, monkeypatch
    ):
        """Head-of-line regression: the backoff is a not-before
        deadline on a timer, so an unrelated queued job completes while
        the failing job is still waiting to retry."""
        from repro.core.parallel import PoolExhaustedError
        from repro.service import jobs as jobs_mod

        attempts = {}

        def flaky(spec, *, checkpoint=None, recorder=None):
            seed = spec.params["seed"]
            attempts[seed] = attempts.get(seed, 0) + 1
            if seed == 1 and attempts[seed] == 1:
                raise PoolExhaustedError([0], rounds=1)
            return {"ok": True, "result": {"seed": seed}}

        monkeypatch.setattr(jobs_mod, "execute_spec", flaky)

        async def body():
            manager = JobManager(
                JobStore(str(tmp_path)), concurrency=1,
                retry_budget=3, backoff_base=1.5, backoff_cap=2.0,
            )
            await manager.start()
            try:
                flaky_job, _ = manager.submit(chaos_payload(seed=1))
                queued_job, _ = manager.submit(chaos_payload(seed=2))
                assert await wait_until(
                    lambda: queued_job.terminal, timeout=10
                )
                assert queued_job.state == "done"
                # The queued job finished while the flaky one was still
                # backing off -- with the old in-loop sleep it would
                # have been stalled behind the full backoff first.
                assert flaky_job.state == "retrying"
                assert await wait_until(
                    lambda: flaky_job.terminal, timeout=15
                )
                assert flaky_job.state == "done"
                assert attempts == {1: 2, 2: 1}
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_priority_orders_dequeue_fifo_within_priority(
        self, tmp_path, monkeypatch
    ):
        from repro.service import jobs as jobs_mod

        gate_running = threading.Event()
        gate = threading.Event()
        order = []

        def fake_execute(spec, *, checkpoint=None, recorder=None):
            seed = spec.params["seed"]
            if seed == 0:
                gate_running.set()
                gate.wait(timeout=30)
            else:
                order.append(seed)
            return {"ok": True, "result": {}}

        monkeypatch.setattr(jobs_mod, "execute_spec", fake_execute)

        async def body():
            manager = JobManager(JobStore(str(tmp_path)), concurrency=1)
            await manager.start()
            try:
                manager.submit(chaos_payload(seed=0))
                assert await wait_until(gate_running.is_set)
                jobs = [
                    manager.submit(chaos_payload(seed=1, priority=0))[0],
                    manager.submit(chaos_payload(seed=2, priority=5))[0],
                    manager.submit(chaos_payload(seed=3, priority=0))[0],
                    manager.submit(chaos_payload(seed=4, priority=5))[0],
                ]
                gate.set()
                assert await wait_until(
                    lambda: all(job.terminal for job in jobs)
                )
                # Higher priority first; submission order inside each.
                assert order == [2, 4, 1, 3]
            finally:
                await manager.stop()
            return True

        assert run(body())

    def test_priority_is_scheduling_metadata_not_identity(self):
        plain = JobSpec.from_payload(chaos_payload(seed=6))
        urgent = JobSpec.from_payload(chaos_payload(seed=6, priority=9))
        assert plain.cache_key("sha") == urgent.cache_key("sha")
        assert urgent.priority == 9 and plain.priority == 0


class TestWeightedAdmission:
    def test_weights_scale_with_work(self):
        quick = JobSpec.from_payload(
            {"kind": "run", "spec": {"experiment": "table1", "quick": True}}
        )
        full = JobSpec.from_payload(
            {"kind": "run", "spec": {"experiment": "table1", "quick": False}}
        )
        bench = JobSpec.from_payload(
            {"kind": "bench", "spec": {"suite": "engines"}}
        )
        small = JobSpec.from_payload(chaos_payload())
        default = JobSpec.from_payload({"kind": "chaos", "spec": {}})
        big = JobSpec.from_payload(
            {"kind": "chaos",
             "spec": {"ns": [16, 32, 64], "trials": 20}}
        )
        assert quick.weight == 1
        assert full.weight == 3
        assert bench.weight == 4
        assert small.weight == 1  # 1 cell
        assert default.weight == 3  # 2 protocols x 3 ns x 3 trials = 18
        assert big.weight == 8  # capped: one sweep can't eat the queue

    def test_admission_is_weighted_and_retry_after_counts_retrying(
        self, tmp_path
    ):
        async def body():
            # Not started: submissions stay queued.
            manager = JobManager(JobStore(str(tmp_path)), max_queue=5)
            bench, _ = manager.submit(
                {"kind": "bench", "spec": {"suite": "engines"}}
            )
            small, _ = manager.submit(chaos_payload(seed=1))
            assert manager.backlog_weight() == 5
            # One more weight-1 job would exceed the 5-unit queue even
            # though only two jobs occupy it.
            with pytest.raises(AdmissionError) as info:
                manager.submit(chaos_payload(seed=2))
            assert info.value.retry_after >= 1.0
            # The Retry-After estimate counts jobs in backoff: a
            # retrying job still owns its slot (the undercount bug).
            small.state = "retrying"
            with_retrying = manager.retry_after_estimate()
            small.state = "done"
            without = manager.retry_after_estimate()
            assert with_retrying > without
            return True

        assert run(body())
