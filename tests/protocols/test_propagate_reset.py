"""Tests for Protocol 2 (Propagate-Reset)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import make_rng
from repro.core.scheduler import ScriptedScheduler
from repro.core.simulation import Simulation
from repro.protocols.parameters import ResetParameters
from repro.protocols.propagate_reset import (
    ResetTimingProtocol,
    TimingAgent,
    TimingRole,
    propagate_reset_interaction,
)

PARAMS = ResetParameters(r_max=5, d_max=10)


def computing() -> TimingAgent:
    return TimingAgent(role=TimingRole.COMPUTING)


def resetting(resetcount: int, delaytimer: int = 0) -> TimingAgent:
    return TimingAgent(
        role=TimingRole.RESETTING, resetcount=resetcount, delaytimer=delaytimer
    )


def interact(a: TimingAgent, b: TimingAgent, params: ResetParameters = PARAMS):
    protocol = ResetTimingProtocol(10, params)
    propagate_reset_interaction(a, b, params, protocol.hooks, make_rng(1, "t"))
    return a, b


class TestRecruitment:
    def test_propagating_recruits_computing_partner(self):
        a, b = interact(resetting(5), computing())
        assert b.role is TimingRole.RESETTING
        # Lines 4-5: the recruit inherits resetcount - 1.
        assert a.resetcount == b.resetcount == 4

    def test_recruitment_is_symmetric(self):
        a, b = interact(computing(), resetting(5))
        assert a.role is TimingRole.RESETTING
        assert a.resetcount == b.resetcount == 4

    def test_dormant_does_not_recruit(self):
        a, b = interact(resetting(0, delaytimer=7), computing())
        assert b.role is TimingRole.COMPUTING
        # Instead the dormant agent awakens by epidemic (line 11).
        assert a.role is TimingRole.COMPUTING
        assert a.generation == 1

    def test_requires_a_resetting_agent(self):
        with pytest.raises(ValueError):
            interact(computing(), computing())


class TestCountMerging:
    def test_two_propagating_take_max_minus_one(self):
        a, b = interact(resetting(5), resetting(2))
        assert a.resetcount == b.resetcount == 4

    def test_counts_never_go_negative(self):
        a, b = interact(resetting(1), resetting(1))
        assert a.resetcount == b.resetcount == 0

    def test_propagating_pulls_dormant_back(self):
        # A dormant agent meeting a propagating one rejoins the wave.
        a, b = interact(resetting(5), resetting(0, delaytimer=3))
        assert a.resetcount == b.resetcount == 4
        assert b.role is TimingRole.RESETTING


class TestDormancy:
    def test_fresh_dormant_gets_full_delay(self):
        a, b = interact(resetting(1), resetting(1))
        # Both just became dormant: delaytimer initialized to D_max.
        assert a.delaytimer == PARAMS.d_max
        assert b.delaytimer == PARAMS.d_max

    def test_dormant_pair_ticks_down(self):
        a, b = interact(resetting(0, delaytimer=5), resetting(0, delaytimer=9))
        assert a.delaytimer == 4
        assert b.delaytimer == 8
        assert a.role is b.role is TimingRole.RESETTING

    def test_timer_expiry_awakens(self):
        a, b = interact(resetting(0, delaytimer=1), resetting(0, delaytimer=9))
        assert a.role is TimingRole.COMPUTING
        assert a.generation == 1
        # Sequential evaluation of line 11: once a computes, b's "partner
        # is not Resetting" condition fires in the same interaction.
        assert b.role is TimingRole.COMPUTING
        assert b.generation == 1

    def test_awakening_spreads_by_epidemic(self):
        # Once one agent computes, a dormant partner wakes regardless of
        # its remaining delay (sequential evaluation of line 11).
        a, b = interact(resetting(0, delaytimer=1), resetting(0, delaytimer=500))
        assert a.role is TimingRole.COMPUTING
        assert b.role is TimingRole.COMPUTING
        assert b.generation == 1

    def test_recruit_by_trigger_starts_propagating_not_dormant(self):
        a, b = interact(resetting(PARAMS.r_max), computing())
        assert b.resetcount == PARAMS.r_max - 1
        assert b.role is TimingRole.RESETTING


class TestFullWave:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_wave_resets_every_agent(self, n):
        params = ResetParameters(r_max=40, d_max=100)
        protocol = ResetTimingProtocol(n, params)
        rng = make_rng(3, "wave", n)
        states = [protocol.triggered_state()] + [
            protocol.initial_state(rng) for _ in range(n - 1)
        ]
        sim = Simulation(protocol, states, rng=rng)
        budget = 2000 * n
        while not protocol.is_correct(sim.states):
            assert sim.interactions < budget
            sim.step()
        # With generous R_max every agent reset exactly once.
        assert [s.generation for s in sim.states] == [1] * n

    def test_no_trigger_no_activity(self, rng):
        protocol = ResetTimingProtocol(5, PARAMS)
        states = [protocol.initial_state(rng) for _ in range(5)]
        sim = Simulation(protocol, states, rng=rng)
        sim.run(200)
        assert all(s.generation == 0 for s in sim.states)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_wave_terminates_from_random_resetting_soup(self, seed):
        """From arbitrary mixed states, everyone eventually computes."""
        n = 8
        protocol = ResetTimingProtocol(n, PARAMS)
        rng = make_rng(seed, "soup")
        states = [protocol.random_state(rng) for _ in range(n)]
        sim = Simulation(protocol, states, rng=rng)
        for _ in range(40_000):
            if all(s.role is TimingRole.COMPUTING for s in sim.states):
                break
            sim.step()
        assert all(s.role is TimingRole.COMPUTING for s in sim.states)

    def test_resetcount_and_delay_stay_in_domain(self):
        n = 6
        protocol = ResetTimingProtocol(n, PARAMS)
        rng = make_rng(9, "domain")
        states = [protocol.random_state(rng) for _ in range(n)]
        sim = Simulation(protocol, states, rng=rng)
        for _ in range(5000):
            sim.step()
            for s in sim.states:
                assert 0 <= s.resetcount <= PARAMS.r_max
                assert 0 <= s.delaytimer <= PARAMS.d_max


class TestScriptedWave:
    def test_exact_three_agent_lifecycle(self):
        """Walk one wave through by hand: trigger -> spread -> dormant -> wake."""
        params = ResetParameters(r_max=2, d_max=2)
        protocol = ResetTimingProtocol(3, params)
        rng = make_rng(4, "scripted")
        states = [
            TimingAgent(role=TimingRole.RESETTING, resetcount=2),
            computing(),
            computing(),
        ]
        script = [
            (0, 1),  # 0 recruits 1: both rc=1
            (1, 2),  # 1 recruits 2: both rc=0 -> dormant, delay=2
            (0, 1),  # 0 (rc=1) meets dormant 1 -> both rc=0 dormant
            (1, 2),  # both dormant: delays 2->1, 1->... per agent
            (1, 2),
            (1, 2),  # delays expire -> Reset, then epidemic wake
            (0, 1),
            (0, 2),
        ]
        sim = Simulation(protocol, states, rng=rng, scheduler=ScriptedScheduler(script))
        sim.run(len(script))
        assert all(s.role is TimingRole.COMPUTING for s in sim.states)
        assert all(s.generation == 1 for s in sim.states)
