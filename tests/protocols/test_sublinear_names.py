"""Tests for repro.protocols.sublinear.names."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import make_rng
from repro.protocols.sublinear.names import (
    EMPTY_NAME,
    append_random_bit,
    fresh_unique_names,
    is_valid_name,
    random_name,
    rank_in_roster,
)


class TestRandomName:
    def test_length_and_alphabet(self, rng):
        name = random_name(9, rng)
        assert len(name) == 9
        assert set(name) <= {"0", "1"}

    def test_rejects_zero_bits(self, rng):
        with pytest.raises(ValueError):
            random_name(0, rng)

    def test_leading_zeros_preserved(self):
        # Must be fixed-width: many draws, all length 5.
        rng = make_rng(0, "names")
        assert all(len(random_name(5, rng)) == 5 for _ in range(200))


class TestAppendRandomBit:
    def test_grows_by_one(self, rng):
        grown = append_random_bit("01", rng)
        assert len(grown) == 3
        assert grown.startswith("01")
        assert grown[2] in "01"

    def test_from_empty(self, rng):
        assert len(append_random_bit(EMPTY_NAME, rng)) == 1


class TestIsValidName:
    def test_accepts_short_and_empty(self):
        assert is_valid_name("", 6)
        assert is_valid_name("0101", 6)

    def test_rejects_too_long_or_bad_chars(self):
        assert not is_valid_name("0000000", 6)
        assert not is_valid_name("01a1", 6)


class TestRankInRoster:
    def test_lexicographic_order(self):
        roster = frozenset({"000", "010", "101"})
        assert rank_in_roster("000", roster) == 1
        assert rank_in_roster("010", roster) == 2
        assert rank_in_roster("101", roster) == 3

    def test_absent_name_returns_none(self):
        assert rank_in_roster("111", frozenset({"000"})) is None

    @given(
        names=st.sets(
            st.text(alphabet="01", min_size=4, max_size=4), min_size=2, max_size=10
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ranks_are_a_permutation(self, names):
        roster = frozenset(names)
        ranks = sorted(rank_in_roster(name, roster) for name in roster)
        assert ranks == list(range(1, len(roster) + 1))

    def test_equal_length_lexicographic_equals_numeric(self):
        roster = frozenset({"0011", "0100", "1000"})
        ordered = sorted(roster, key=lambda s: int(s, 2))
        for position, name in enumerate(ordered, start=1):
            assert rank_in_roster(name, roster) == position


class TestFreshUniqueNames:
    def test_unique_and_full_length(self, rng):
        names = fresh_unique_names(12, 12, rng)
        assert len(set(names)) == 12
        assert all(len(name) == 12 for name in names)

    def test_deterministic_given_rng(self):
        a = fresh_unique_names(6, 9, make_rng(1, "f"))
        b = fresh_unique_names(6, 9, make_rng(1, "f"))
        assert a == b
