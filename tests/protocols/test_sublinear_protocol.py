"""Tests for Protocols 5-6 (Sublinear-Time-SSR)."""

import pytest

from repro.core.configuration import is_silent
from repro.core.errors import NotSilentError
from repro.protocols.parameters import calibrated_sublinear
from repro.protocols.sublinear.history_tree import HistoryTree
from repro.protocols.sublinear.names import fresh_unique_names
from repro.protocols.sublinear.protocol import (
    SubRole,
    SublinearAgent,
    SublinearTimeSSR,
)


def collecting(name, roster=None, rank=1):
    return SublinearAgent(
        role=SubRole.COLLECTING,
        name=name,
        rank=rank,
        roster=frozenset(roster if roster is not None else (name,)),
        tree=HistoryTree.singleton(name),
    )


class TestConstruction:
    def test_default_h_is_log2_n(self):
        assert SublinearTimeSSR(16).h == 4
        assert SublinearTimeSSR(17).h == 5

    def test_h_zero_is_silent_variant(self):
        assert SublinearTimeSSR(8, h=0).silent
        assert not SublinearTimeSSR(8, h=1).silent

    def test_params_h_conflict_rejected(self):
        params = calibrated_sublinear(8, h=2)
        with pytest.raises(ValueError):
            SublinearTimeSSR(8, h=3, params=params)

    def test_params_without_h_accepted(self):
        params = calibrated_sublinear(8, h=2)
        assert SublinearTimeSSR(8, params=params).h == 2


class TestCollectingInteractions:
    def test_rosters_merge_by_union(self, rng):
        p = SublinearTimeSSR(4, h=1)
        names = fresh_unique_names(4, p.params.name_bits, rng)
        a = collecting(names[0], {names[0], names[2]})
        b = collecting(names[1], {names[1], names[3]})
        a, b = p.transition(a, b, rng)
        assert a.roster == b.roster == frozenset(names)

    def test_rank_written_only_when_roster_full(self, rng):
        p = SublinearTimeSSR(4, h=1)
        names = sorted(fresh_unique_names(4, p.params.name_bits, rng))
        a = collecting(names[0], set(names[:3]))
        b = collecting(names[3], {names[3]})
        a, b = p.transition(a, b, rng)
        assert a.rank == 1  # lexicographically first
        assert b.rank == 4

    def test_rank_not_written_below_full(self, rng):
        p = SublinearTimeSSR(4, h=1)
        names = fresh_unique_names(4, p.params.name_bits, rng)
        a = collecting(names[0], rank=3)
        b = collecting(names[1], rank=2)
        a, b = p.transition(a, b, rng)
        assert (a.rank, b.rank) == (3, 2)  # untouched

    def test_name_collision_triggers_reset(self, rng):
        p = SublinearTimeSSR(4, h=1)
        name = "0" * p.params.name_bits
        a, b = p.transition(collecting(name), collecting(name), rng)
        assert a.role is b.role is SubRole.RESETTING
        assert a.resetcount == p.params.reset.r_max
        assert a.roster == frozenset()  # collecting fields cleared

    def test_roster_overflow_triggers_reset(self, rng):
        p = SublinearTimeSSR(3, h=1)
        names = fresh_unique_names(6, p.params.name_bits, rng)
        a = collecting(names[0], set(names[:3]))
        b = collecting(names[1], set(names[3:]) | {names[1]})
        a, b = p.transition(a, b, rng)
        assert a.role is b.role is SubRole.RESETTING

    def test_name_missing_from_roster_skips_rank_write(self, rng):
        # Adversarial: full roster that does not contain the agent's name.
        p = SublinearTimeSSR(3, h=1)
        names = fresh_unique_names(4, p.params.name_bits, rng)
        a = collecting(names[0], set(names[1:4]), rank=2)  # own name absent
        b = collecting(names[1], set(names[1:4]), rank=2)
        a, b = p.transition(a, b, rng)
        if a.role is SubRole.COLLECTING:  # no collision fired
            assert a.rank == 2  # unchanged: no crash, no bogus write


class TestResettingInteractions:
    def test_propagating_agent_clears_name(self, rng):
        p = SublinearTimeSSR(4, h=1)
        a = SublinearAgent(role=SubRole.RESETTING, name="1010", resetcount=5)
        b = collecting("0" * p.params.name_bits)
        a, b = p.transition(a, b, rng)
        assert a.name == ""
        assert b.role is SubRole.RESETTING  # recruited
        assert b.name == ""  # recruited agents propagate too

    def test_dormant_agent_grows_name(self, rng):
        p = SublinearTimeSSR(4, h=1)
        a = SublinearAgent(
            role=SubRole.RESETTING, name="", resetcount=0, delaytimer=50
        )
        b = SublinearAgent(
            role=SubRole.RESETTING, name="", resetcount=0, delaytimer=50
        )
        a, b = p.transition(a, b, rng)
        assert len(a.name) == 1 and len(b.name) == 1

    def test_full_name_stops_growing(self, rng):
        p = SublinearTimeSSR(4, h=1)
        full = "1" * p.params.name_bits
        a = SublinearAgent(
            role=SubRole.RESETTING, name=full, resetcount=0, delaytimer=50
        )
        b = SublinearAgent(
            role=SubRole.RESETTING, name="", resetcount=0, delaytimer=50
        )
        a, b = p.transition(a, b, rng)
        assert a.name == full

    def test_reset_restores_collecting_state(self, rng):
        p = SublinearTimeSSR(4, h=1)
        full = "1" * p.params.name_bits
        a = SublinearAgent(
            role=SubRole.RESETTING, name=full, resetcount=0, delaytimer=1
        )
        b = collecting("0" * p.params.name_bits)
        a, b = p.transition(a, b, rng)
        assert a.role is SubRole.COLLECTING
        assert a.roster == frozenset((full,))
        assert a.tree.canonical(0) == HistoryTree.singleton(full).canonical(0)
        assert a.clock == 0


class TestOutputs:
    def test_rank_of_roles(self):
        p = SublinearTimeSSR(4, h=1)
        assert p.rank_of(collecting("0101", rank=3)) == 3
        assert p.rank_of(SublinearAgent(role=SubRole.RESETTING, name="")) is None

    def test_correct_configuration(self, rng):
        p = SublinearTimeSSR(4, h=1)
        names = sorted(fresh_unique_names(4, p.params.name_bits, rng))
        states = [
            collecting(name, set(names), rank=i + 1) for i, name in enumerate(names)
        ]
        assert p.is_correct(states)

    def test_unique_names_configuration(self, rng):
        p = SublinearTimeSSR(6, h=1)
        states = p.unique_names_configuration(rng)
        assert len({s.name for s in states}) == 6
        assert all(s.roster == frozenset((s.name,)) for s in states)


class TestSilenceH0:
    def test_final_configuration_is_silent(self, rng):
        p = SublinearTimeSSR(3, h=0)
        names = sorted(fresh_unique_names(3, p.params.name_bits, rng))
        states = [
            collecting(name, set(names), rank=i + 1) for i, name in enumerate(names)
        ]
        assert is_silent(p, states)

    def test_partial_rosters_not_silent(self, rng):
        p = SublinearTimeSSR(3, h=0)
        names = fresh_unique_names(3, p.params.name_bits, rng)
        states = [collecting(name) for name in names]
        assert not is_silent(p, states)

    def test_h1_rejects_silence_queries(self, rng):
        p = SublinearTimeSSR(3, h=1)
        with pytest.raises(NotSilentError):
            is_silent(p, p.unique_names_configuration(rng))

    def test_equal_names_pair_is_not_null(self):
        p = SublinearTimeSSR(3, h=0)
        name = "0" * p.params.name_bits
        assert not p.is_pair_null(collecting(name), collecting(name))


class TestRandomState:
    def test_fields_in_domain(self, rng):
        p = SublinearTimeSSR(6, h=2)
        for _ in range(100):
            s = p.random_state(rng)
            assert len(s.name) <= p.params.name_bits
            if s.role is SubRole.COLLECTING:
                assert len(s.roster) <= 6
                assert 1 <= s.rank <= 6
                assert s.tree.depth() <= 2
            else:
                assert 0 <= s.resetcount <= p.params.reset.r_max
