"""Tests for the O(sqrt n) sync-dictionary warm-up protocol."""

import pytest

from repro.core.rng import make_rng
from repro.protocols.sublinear.names import fresh_unique_names
from repro.protocols.sync_dictionary import DictAgent, DictRole, SyncDictionarySSR


def collecting(name, roster=None, syncs=None, rank=1):
    return DictAgent(
        role=DictRole.COLLECTING,
        name=name,
        rank=rank,
        roster=frozenset(roster if roster is not None else (name,)),
        syncs=dict(syncs or {}),
    )


class TestRecordsCollide:
    def test_equal_names(self):
        assert SyncDictionarySSR.records_collide(collecting("x"), collecting("x"))

    def test_no_records_no_collision(self):
        assert not SyncDictionarySSR.records_collide(collecting("x"), collecting("y"))

    def test_matching_records_ok(self):
        a = collecting("x", syncs={"y": 5})
        b = collecting("y", syncs={"x": 5})
        assert not SyncDictionarySSR.records_collide(a, b)

    def test_mismatched_records_collide(self):
        a = collecting("x", syncs={"y": 5})
        b = collecting("y", syncs={"x": 6})
        assert SyncDictionarySSR.records_collide(a, b)

    def test_one_sided_record_collides(self):
        a = collecting("x", syncs={"y": 5})
        b = collecting("y")
        assert SyncDictionarySSR.records_collide(a, b)
        assert SyncDictionarySSR.records_collide(b, a)


class TestTransition:
    def test_meeting_records_shared_sync(self, rng):
        p = SyncDictionarySSR(4)
        names = fresh_unique_names(4, p.params.name_bits, rng)
        a, b = p.transition(collecting(names[0]), collecting(names[1]), rng)
        assert a.syncs[names[1]] == b.syncs[names[0]]

    def test_collision_triggers_reset(self, rng):
        p = SyncDictionarySSR(4)
        name = "0" * p.params.name_bits
        a, b = p.transition(collecting(name), collecting(name), rng)
        assert a.role is b.role is DictRole.RESETTING
        assert a.syncs == {}

    def test_witness_scenario(self, rng):
        """b meets x, then the duplicate x': mismatch exposed."""
        p = SyncDictionarySSR(4)
        names = fresh_unique_names(4, p.params.name_bits, rng)
        x, dup, b = collecting(names[0]), collecting(names[0]), collecting(names[1])
        b, x = p.transition(b, x, rng)
        b2, dup = p.transition(b, dup, rng)
        assert b2.role is DictRole.RESETTING
        assert dup.role is DictRole.RESETTING

    def test_remeeting_refreshes_both_sides(self, rng):
        p = SyncDictionarySSR(4)
        names = fresh_unique_names(4, p.params.name_bits, rng)
        a, b = collecting(names[0]), collecting(names[1])
        a, b = p.transition(a, b, rng)
        first = a.syncs[names[1]]
        for _ in range(20):  # re-meet until the sync value changes
            a, b = p.transition(a, b, rng)
            assert a.syncs[names[1]] == b.syncs[names[0]]
            if a.syncs[names[1]] != first:
                break
        else:  # pragma: no cover - probability (1/s_max)^20
            pytest.fail("sync value never refreshed")

    def test_rank_assignment_on_full_roster(self, rng):
        p = SyncDictionarySSR(3)
        names = sorted(fresh_unique_names(3, p.params.name_bits, rng))
        a = collecting(names[0], set(names[:2]))
        b = collecting(names[2], {names[2]})
        a, b = p.transition(a, b, rng)
        assert a.rank == 1
        assert b.rank == 3


class TestConvergence:
    def test_stabilizes_from_planted_collision(self):
        from repro.experiments.common import measure_convergence
        from repro.experiments.hsweep import dict_collision_start

        p = SyncDictionarySSR(8)
        rng = make_rng(11, "dict-conv")
        outcome = measure_convergence(
            p, dict_collision_start(p, rng), rng=rng, max_time=3000.0
        )
        assert outcome.converged
