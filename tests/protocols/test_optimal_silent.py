"""Tests for Protocols 3-4 (Optimal-Silent-SSR)."""

import pytest

from repro.core.configuration import is_silent
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.protocols.optimal_silent import (
    FOLLOWER,
    LEADER,
    OptimalSilentAgent,
    OptimalSilentSSR,
    Role,
)
from repro.protocols.parameters import OptimalSilentParameters, ResetParameters

SMALL_PARAMS = OptimalSilentParameters(
    reset=ResetParameters(r_max=6, d_max=24), e_max=120
)


def settled(rank: int, children: int = 0) -> OptimalSilentAgent:
    return OptimalSilentAgent(role=Role.SETTLED, rank=rank, children=children)


def unsettled(errorcount: int = 100) -> OptimalSilentAgent:
    return OptimalSilentAgent(role=Role.UNSETTLED, errorcount=errorcount)


def protocol6() -> OptimalSilentSSR:
    return OptimalSilentSSR(6, SMALL_PARAMS)


class TestRankCollision:
    def test_same_rank_triggers_reset(self, rng):
        p = protocol6()
        a, b = p.transition(settled(3), settled(3), rng)
        assert a.role is b.role is Role.RESETTING
        assert a.resetcount == b.resetcount == SMALL_PARAMS.reset.r_max
        assert a.leader == b.leader == LEADER

    def test_distinct_ranks_are_null(self, rng):
        p = protocol6()
        a, b = p.transition(settled(2, 2), settled(5, 2), rng)
        assert (a.role, a.rank) == (Role.SETTLED, 2)
        assert (b.role, b.rank) == (Role.SETTLED, 5)


class TestRanking:
    def test_settled_recruits_first_child(self, rng):
        p = protocol6()
        a, b = p.transition(settled(2, children=0), unsettled(), rng)
        assert a.children == 1
        assert b.role is Role.SETTLED
        assert b.rank == 4  # 2 * 2 + 0
        assert b.children == 0

    def test_settled_recruits_second_child(self, rng):
        p = protocol6()
        a, b = p.transition(settled(2, children=1), unsettled(), rng)
        assert b.rank == 5  # 2 * 2 + 1
        assert a.children == 2

    def test_full_parent_does_not_recruit(self, rng):
        p = protocol6()
        a, b = p.transition(settled(2, children=2), unsettled(100), rng)
        assert b.role is Role.UNSETTLED
        assert b.errorcount == 99  # but its error counter ticked

    def test_rank_bound_respected(self, rng):
        # n = 6: rank 3's children are 6 (ok) and 7 (> n: forbidden).
        p = protocol6()
        a, b = p.transition(settled(3, children=1), unsettled(), rng)
        assert b.role is Role.UNSETTLED
        a2, b2 = p.transition(settled(3, children=0), unsettled(), rng)
        assert b2.rank == 6

    def test_unsettled_pair_both_tick(self, rng):
        p = protocol6()
        a, b = p.transition(unsettled(10), unsettled(20), rng)
        assert a.errorcount == 9
        assert b.errorcount == 19

    def test_starved_unsettled_triggers_both(self, rng):
        p = protocol6()
        a, b = p.transition(unsettled(1), settled(2, 2), rng)
        assert a.role is b.role is Role.RESETTING
        assert a.resetcount == SMALL_PARAMS.reset.r_max


class TestResetSubroutine:
    def test_leader_settles_at_rank_one(self, rng):
        p = protocol6()
        agent = OptimalSilentAgent(
            role=Role.RESETTING, leader=LEADER, resetcount=0, delaytimer=1
        )
        partner = OptimalSilentAgent(
            role=Role.RESETTING, leader=FOLLOWER, resetcount=0, delaytimer=50
        )
        a, b = p.transition(agent, partner, rng)
        # The pseudocode runs sequentially: both awaken (leader settles at
        # rank 1, follower becomes unsettled), and then the ranking block
        # of the same interaction already recruits the fresh unsettled
        # agent as the leader's first child.
        assert a.role is Role.SETTLED and a.rank == 1 and a.children == 1
        assert b.role is Role.SETTLED and b.rank == 2

    def test_dormant_leader_election(self, rng):
        p = protocol6()
        a = OptimalSilentAgent(
            role=Role.RESETTING, leader=LEADER, resetcount=0, delaytimer=20
        )
        b = OptimalSilentAgent(
            role=Role.RESETTING, leader=LEADER, resetcount=0, delaytimer=20
        )
        a, b = p.transition(a, b, rng)
        assert (a.leader, b.leader) == (LEADER, FOLLOWER)

    def test_election_only_among_resetting(self, rng):
        # A settled agent never participates in L,L -> L,F.
        p = protocol6()
        a = settled(2, 2)
        b = OptimalSilentAgent(
            role=Role.RESETTING, leader=LEADER, resetcount=0, delaytimer=20
        )
        a2, b2 = p.transition(a, b, rng)
        assert a2.role is Role.SETTLED  # unchanged
        # b awakened by epidemic (partner computing).
        assert b2.role is Role.SETTLED and b2.rank == 1


class TestStateSpace:
    def test_state_count_formula(self):
        p = protocol6()
        expected = (
            3 * 6
            + (SMALL_PARAMS.e_max + 1)
            + 2 * (SMALL_PARAMS.reset.r_max + SMALL_PARAMS.reset.d_max + 1)
        )
        assert p.state_count() == expected

    def test_state_count_is_linear_in_n(self):
        counts = [OptimalSilentSSR(n).state_count() for n in (16, 32, 64)]
        ratios = [b / a for a, b in zip(counts, counts[1:])]
        assert all(1.5 < r < 2.5 for r in ratios)

    def test_random_state_fields_in_domain(self, rng):
        p = protocol6()
        for _ in range(200):
            s = p.random_state(rng)
            if s.role is Role.SETTLED:
                assert 1 <= s.rank <= 6 and 0 <= s.children <= 2
            elif s.role is Role.UNSETTLED:
                assert 0 <= s.errorcount <= SMALL_PARAMS.e_max
            else:
                assert s.leader in (LEADER, FOLLOWER)
                assert 0 <= s.resetcount <= SMALL_PARAMS.reset.r_max
                assert 0 <= s.delaytimer <= SMALL_PARAMS.reset.d_max


class TestConfigurations:
    def test_ranked_configuration_is_correct_and_silent(self):
        p = protocol6()
        states = p.ranked_configuration()
        assert p.is_correct(states)
        assert is_silent(p, states)

    def test_ranked_configuration_is_stable(self, rng):
        p = protocol6()
        states = p.ranked_configuration()
        sim = Simulation(p, states, rng=rng)
        sim.run(2000)
        assert p.is_correct(sim.states)

    def test_duplicate_rank_configuration(self):
        p = protocol6()
        states = p.duplicate_rank_configuration(rank=2)
        ranks = sorted(s.rank for s in states)
        assert ranks == [1, 2, 2, 3, 4, 5]
        assert not p.is_correct(states)
        assert not is_silent(p, states)

    def test_duplicate_rank_validates_range(self):
        p = protocol6()
        with pytest.raises(ValueError):
            p.duplicate_rank_configuration(rank=6)


class TestScenario:
    def test_duplicate_rank_recovers(self):
        """Full loop: collision -> reset -> election -> ranking."""
        p = OptimalSilentSSR(8)
        rng = make_rng(5, "recover")
        monitor = p.convergence_monitor()
        sim = Simulation(
            p, p.duplicate_rank_configuration(rank=1), rng=rng, monitors=[monitor]
        )
        budget = 3_000_000
        while not (monitor.correct and is_silent(p, sim.states)):
            assert sim.interactions < budget
            sim.run(100)
        assert p.is_correct(sim.states)

    def test_leader_is_rank_one(self, rng):
        p = protocol6()
        states = p.ranked_configuration()
        leaders = [s for s in states if p.is_leader(s)]
        assert len(leaders) == 1
        assert leaders[0].rank == 1

    def test_trigger_clears_stale_fields(self, rng):
        p = protocol6()
        a, b = p.transition(settled(3, children=2), settled(3, children=1), rng)
        # Old rank/children must not leak across the role switch.
        assert a.rank == 0 and a.children == 0
        assert b.rank == 0 and b.children == 0
