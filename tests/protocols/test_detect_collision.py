"""Tests for Protocol 7 (Detect-Name-Collision)."""

from dataclasses import dataclass, field

from repro.core.rng import make_rng
from repro.protocols.parameters import calibrated_sublinear
from repro.protocols.sublinear.detect_collision import (
    detect_name_collision,
    find_collision,
    merge_histories,
)
from repro.protocols.sublinear.history_tree import HistoryTree


@dataclass
class Agent:
    name: str
    tree: HistoryTree = field(default_factory=lambda: HistoryTree.singleton(""))
    clock: int = 0

    def __post_init__(self):
        if not self.tree.name:
            self.tree = HistoryTree.singleton(self.name)


PARAMS = calibrated_sublinear(8, h=3)


def meet(a: Agent, b: Agent, sync=None):
    assert not find_collision(a, b)
    merge_histories(a, b, PARAMS, make_rng(0, "meet"), sync=sync)


class TestDirectDetection:
    def test_equal_names_collide(self):
        assert find_collision(Agent("x"), Agent("x"))

    def test_fresh_distinct_names_do_not(self):
        assert not find_collision(Agent("x"), Agent("y"))


class TestMergeMechanics:
    def test_both_sides_record_the_same_sync(self):
        a, b = Agent("a"), Agent("b")
        meet(a, b, sync=42)
        assert a.tree.find_child("b").sync == 42
        assert b.tree.find_child("a").sync == 42

    def test_remeeting_replaces_the_record(self):
        a, b = Agent("a"), Agent("b")
        meet(a, b, sync=1)
        meet(a, b, sync=7)
        assert a.tree.find_child("b").sync == 7
        assert len(a.tree.edges) == 1  # replaced, not duplicated

    def test_clocks_advance(self):
        a, b = Agent("a"), Agent("b")
        meet(a, b)
        assert a.clock == 1 and b.clock == 1

    def test_graft_uses_pre_interaction_trees(self):
        # After a-b, both have depth-1 info; when they re-meet, neither
        # tree may contain the fresh sync below depth 1 (that would mean
        # post-interaction state leaked into the snapshot).
        a, b = Agent("a"), Agent("b")
        meet(a, b, sync=1)
        c = Agent("c")
        meet(b, c, sync=2)
        meet(a, b, sync=7)
        # a's view of b is b's tree *before* sync 7 existed: b -> {a?, c}.
        b_record = a.tree.find_child("b").child
        assert b_record.find_child("c").sync == 2
        # a's own name was pruned from the grafted subtree.
        assert b_record.find_child("a") is None

    def test_own_name_never_below_root(self):
        agents = [Agent(name) for name in "abcd"]
        rng = make_rng(1, "soup")
        for _ in range(60):
            i, j = rng.sample(range(4), 2)
            if not find_collision(agents[i], agents[j]):
                merge_histories(agents[i], agents[j], PARAMS, rng)
        for agent in agents:
            assert not agent.tree.contains_name(agent.name)

    def test_trees_stay_simply_labelled_and_bounded(self):
        agents = [Agent(name) for name in "abcdef"]
        rng = make_rng(2, "soup")
        for _ in range(150):
            i, j = rng.sample(range(6), 2)
            if not find_collision(agents[i], agents[j]):
                merge_histories(agents[i], agents[j], PARAMS, rng)
        for agent in agents:
            assert agent.tree.is_simply_labelled()
            assert agent.tree.depth() <= PARAMS.h

    def test_h_zero_keeps_trees_trivial(self):
        params0 = calibrated_sublinear(8, h=0)
        a, b = Agent("a"), Agent("b")
        merge_histories(a, b, params0, make_rng(0, "h0"))
        assert a.tree.size() == 1
        assert b.tree.size() == 1


class TestIndirectDetection:
    def test_witness_catches_duplicate(self):
        """b meets a, then a' (same name as a): collision via the path."""
        a, dup = Agent("x"), Agent("x")
        b = Agent("b")
        meet(b, a, sync=5)
        # b now holds b -> x(sync 5); dup has no record of b.
        assert find_collision(b, dup)

    def test_witness_does_not_accuse_the_original(self):
        a = Agent("x")
        b = Agent("b")
        meet(b, a, sync=5)
        assert not find_collision(b, a)

    def test_two_hop_witness_chain(self):
        """H >= 2: c hears about x through b, then meets the duplicate."""
        a, dup = Agent("x"), Agent("x")
        b, c = Agent("b"), Agent("c")
        meet(a, b, sync=5)
        meet(b, c, sync=6)  # c: c -> b -> x
        assert c.tree.paths_to_name("x", c.clock)
        assert find_collision(c, dup)
        assert not find_collision(c, a)

    def test_honest_population_never_accuses(self):
        agents = [Agent(name) for name in "abcdefgh"]
        rng = make_rng(3, "honest")
        for _ in range(400):
            i, j = rng.sample(range(8), 2)
            assert not find_collision(agents[i], agents[j]), (i, j)
            merge_histories(agents[i], agents[j], PARAMS, rng)

    def test_expired_paths_do_not_accuse(self):
        """Stale accusations are gated by the edge timers."""
        a, dup = Agent("x"), Agent("x")
        b = Agent("b")
        meet(b, a, sync=5)
        b.clock += PARAMS.t_h  # age b far beyond T_H
        assert not find_collision(b, dup)


class TestDetectNameCollision:
    def test_collision_skips_merge(self):
        a, dup, b = Agent("x"), Agent("x"), Agent("b")
        meet(b, a, sync=5)
        clock_before = b.clock
        assert detect_name_collision(b, dup, PARAMS, make_rng(0, "d"))
        assert b.clock == clock_before  # no merge side effects
        assert dup.tree.size() == 1

    def test_clean_pair_merges(self):
        a, b = Agent("a"), Agent("b")
        assert not detect_name_collision(a, b, PARAMS, make_rng(0, "d"))
        assert a.tree.find_child("b") is not None
