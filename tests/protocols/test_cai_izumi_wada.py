"""Tests for Protocol 1 (Silent-n-state-SSR)."""

import pytest

from repro.core.configuration import is_silent
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR


class TestTransition:
    def test_equal_ranks_bump_responder(self, rng):
        protocol = SilentNStateSSR(5)
        assert protocol.transition(3, 3, rng) == (3, 4)

    def test_wraparound_mod_n(self, rng):
        protocol = SilentNStateSSR(5)
        assert protocol.transition(4, 4, rng) == (4, 0)

    def test_distinct_ranks_are_null(self, rng):
        protocol = SilentNStateSSR(5)
        assert protocol.transition(1, 4, rng) == (1, 4)

    def test_initiator_never_changes(self, rng):
        protocol = SilentNStateSSR(5)
        for a in range(5):
            for b in range(5):
                new_a, _ = protocol.transition(a, b, rng)
                assert new_a == a


class TestStateSpace:
    def test_state_count_is_exactly_n(self):
        assert SilentNStateSSR(17).state_count() == 17

    def test_random_state_in_domain(self, rng):
        protocol = SilentNStateSSR(6)
        assert all(0 <= protocol.random_state(rng) < 6 for _ in range(100))

    def test_rank_of_shifts_to_one_based(self):
        protocol = SilentNStateSSR(4)
        assert protocol.rank_of(0) == 1
        assert protocol.rank_of(3) == 4

    def test_rejects_population_below_two(self):
        with pytest.raises(ValueError):
            SilentNStateSSR(1)


class TestCorrectnessAndSilence:
    def test_permutation_is_correct(self):
        protocol = SilentNStateSSR(4)
        assert protocol.is_correct([2, 0, 3, 1])

    def test_duplicate_is_incorrect(self):
        protocol = SilentNStateSSR(4)
        assert not protocol.is_correct([2, 2, 3, 1])

    def test_null_pair_predicate(self):
        protocol = SilentNStateSSR(4)
        assert protocol.is_pair_null(1, 2)
        assert not protocol.is_pair_null(2, 2)

    def test_correct_configuration_is_silent_and_stable(self, rng):
        protocol = SilentNStateSSR(5)
        states = [3, 1, 0, 4, 2]
        assert is_silent(protocol, states)
        sim = Simulation(protocol, states, rng=rng)
        sim.run(500)
        assert sim.states == states


class TestNotableConfigurations:
    def test_worst_case_configuration(self):
        protocol = SilentNStateSSR(6)
        config = protocol.worst_case_configuration()
        assert sorted(config) == [0, 0, 1, 2, 3, 4]

    def test_counts_to_configuration_roundtrip(self):
        protocol = SilentNStateSSR(4)
        config = protocol.counts_to_configuration([2, 0, 1, 1])
        assert sorted(config) == [0, 0, 2, 3]

    def test_counts_to_configuration_validates(self):
        protocol = SilentNStateSSR(4)
        with pytest.raises(ValueError):
            protocol.counts_to_configuration([1, 1, 1])  # wrong length
        with pytest.raises(ValueError):
            protocol.counts_to_configuration([2, 2, 1, 0])  # wrong sum


class TestConvergence:
    def test_converges_from_worst_case(self, rng):
        protocol = SilentNStateSSR(8)
        monitor = protocol.convergence_monitor()
        sim = Simulation(
            protocol,
            protocol.worst_case_configuration(),
            rng=rng,
            monitors=[monitor],
        )
        while not monitor.correct:
            sim.step()
        assert protocol.is_correct(sim.states)
        assert is_silent(protocol, sim.states)

    def test_converges_from_all_zero(self, rng):
        protocol = SilentNStateSSR(6)
        monitor = protocol.convergence_monitor()
        sim = Simulation(protocol, [0] * 6, rng=rng, monitors=[monitor])
        while not monitor.correct:
            sim.step()
        assert sorted(sim.states) == list(range(6))
