"""Tests for DirectCollisionSSR (the named H = 0 silent variant)."""

import pytest

from repro.core.configuration import is_silent
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.experiments.hsweep import collision_start
from repro.protocols.direct_collision import DirectCollisionSSR
from repro.protocols.parameters import calibrated_sublinear
from repro.protocols.sublinear.protocol import SublinearTimeSSR


class TestConstruction:
    def test_is_the_h0_protocol(self):
        protocol = DirectCollisionSSR(8)
        assert protocol.h == 0
        assert protocol.silent
        assert isinstance(protocol, SublinearTimeSSR)

    def test_rejects_nonzero_h_params(self):
        params = calibrated_sublinear(8, h=1)
        with pytest.raises(ValueError):
            DirectCollisionSSR(8, params=params)

    def test_accepts_h0_params(self):
        params = calibrated_sublinear(8, h=0)
        assert DirectCollisionSSR(8, params=params).params is params


class TestBehaviour:
    def test_trees_never_grow(self):
        protocol = DirectCollisionSSR(6)
        rng = make_rng(1, "dc")
        sim = Simulation(protocol, protocol.unique_names_configuration(rng), rng=rng)
        sim.run(2000)
        assert all(s.tree.size() == 1 for s in sim.states)

    def test_stabilizes_to_silence_from_planted_collision(self):
        protocol = DirectCollisionSSR(6)
        rng = make_rng(2, "dc")
        monitor = protocol.convergence_monitor()
        sim = Simulation(
            protocol, collision_start(protocol, rng), rng=rng, monitors=[monitor]
        )
        budget = 2_000_000
        while not (monitor.correct and is_silent(protocol, sim.states)):
            assert sim.interactions < budget
            sim.run(50)
        assert protocol.is_correct(sim.states)

    def test_detection_needs_direct_meeting(self):
        """The duplicates' first meeting is the trigger -- nobody else's."""
        from repro.protocols.sublinear.protocol import SubRole

        protocol = DirectCollisionSSR(8)
        rng = make_rng(3, "dc")
        sim = Simulation(protocol, collision_start(protocol, rng), rng=rng)
        # Track that the first Resetting agents are exactly the duplicates.
        duplicate_name = sim.states[0].name
        assert sim.states[1].name == duplicate_name
        while not any(s.role is SubRole.RESETTING for s in sim.states):
            sim.step()
        resetting = [i for i, s in enumerate(sim.states) if s.role is SubRole.RESETTING]
        assert set(resetting) == {0, 1}
