"""Tests for the loosely-stabilizing leader election foil."""

import pytest

from repro.core.rng import make_rng
from repro.experiments.loose import fast_convergence_time, fast_holding_time
from repro.protocols.loose_stabilization import LooseAgent, LooselyStabilizingLE


def agent(leader: bool, timer: int) -> LooseAgent:
    return LooseAgent(leader=leader, timer=timer)


class TestTransition:
    def test_propagate_and_decay(self, rng):
        p = LooselyStabilizingLE(8, t_max=10)
        a, b = p.transition(agent(False, 7), agent(False, 3), rng)
        assert a.timer == b.timer == 6

    def test_leader_refreshes_own_timer(self, rng):
        p = LooselyStabilizingLE(8, t_max=10)
        a, b = p.transition(agent(True, 2), agent(False, 5), rng)
        assert a.timer == 10  # refreshed
        assert b.timer == 4  # decayed copy of the max

    def test_two_leaders_reduce(self, rng):
        p = LooselyStabilizingLE(8, t_max=10)
        a, b = p.transition(agent(True, 10), agent(True, 10), rng)
        assert a.leader and not b.leader

    def test_timeout_creates_leader(self, rng):
        p = LooselyStabilizingLE(8, t_max=10)
        a, b = p.transition(agent(False, 1), agent(False, 0), rng)
        assert a.leader and b.leader  # both decayed to 0 and timed out
        assert a.timer == b.timer == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            LooselyStabilizingLE(8, t_max=0)


class TestStateSpace:
    def test_state_count_independent_of_n(self):
        assert LooselyStabilizingLE(8, t_max=5).state_count() == 12
        assert LooselyStabilizingLE(800, t_max=5).state_count() == 12

    def test_below_theorem21_bound(self):
        # The escape hatch Theorem 2.1 leaves open: not truly stable.
        p = LooselyStabilizingLE(64, t_max=10)
        assert p.state_count() < p.n

    def test_correctness_predicate(self, rng):
        p = LooselyStabilizingLE(4, t_max=5)
        assert p.is_correct(p.ideal_configuration())
        assert not p.is_correct([agent(True, 5), agent(True, 5), agent(False, 5), agent(False, 5)])


class TestLifecycle:
    def test_converges_from_random_start(self):
        p = LooselyStabilizingLE(16, t_max=10)
        rng = make_rng(1, "loose-conv")
        states = [p.random_state(rng) for _ in range(16)]
        elapsed = p.time_to_unique_leader(states, rng, max_time=20_000.0)
        assert elapsed is not None

    def test_holding_is_finite_at_small_t_max(self):
        p = LooselyStabilizingLE(16, t_max=4)
        elapsed, censored = p.holding_time(make_rng(2, "loose-hold"), max_time=5_000.0)
        assert not censored
        assert elapsed < 5_000.0

    def test_holding_grows_with_t_max(self):
        quick = [
            fast_holding_time(32, 6, seed=5, trial=t, horizon_time=4_000.0)[0]
            for t in range(6)
        ]
        slow = [
            fast_holding_time(32, 12, seed=5, trial=t, horizon_time=4_000.0)[0]
            for t in range(6)
        ]
        assert sum(slow) > 5 * sum(quick)

    def test_fast_and_reference_loops_agree_in_scale(self):
        """The array loop and the object protocol measure the same thing."""
        t_max, n, trials = 6, 16, 12
        fast = [
            fast_holding_time(n, t_max, seed=9, trial=t, horizon_time=4_000.0)[0]
            for t in range(trials)
        ]
        reference = []
        for t in range(trials):
            p = LooselyStabilizingLE(n, t_max)
            elapsed, _ = p.holding_time(make_rng(10, "ref", t), max_time=4_000.0)
            reference.append(elapsed)
        mean_fast = sum(fast) / trials
        mean_ref = sum(reference) / trials
        assert 0.3 < mean_fast / mean_ref < 3.0

    def test_fast_convergence_reaches_unique_leader(self):
        elapsed = fast_convergence_time(32, 10, seed=11, trial=0, horizon_time=20_000.0)
        assert 0 <= elapsed < 20_000.0
