"""Tests for the naming problem and the ranking => naming => SSLE hierarchy."""

from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.leader import has_unique_leader
from repro.protocols.naming import (
    NamingOnlyProtocol,
    names_are_unique,
    naming_correct,
    ranking_as_names,
    sublinear_names_view,
    _next_prime,
)
from repro.protocols.sublinear.protocol import SubRole, SublinearAgent, SublinearTimeSSR


class TestPredicates:
    def test_names_are_unique(self):
        assert names_are_unique([1, 2, 3])
        assert not names_are_unique([1, 1, 3])
        assert not names_are_unique([1, None, 3])
        assert names_are_unique([])

    def test_ranking_as_names(self):
        protocol = SilentNStateSSR(3)
        assert ranking_as_names(protocol, [2, 0, 1]) == [3, 1, 2]

    def test_hierarchy_on_a_correct_ranking(self):
        """ranking correct => naming correct => unique leader."""
        protocol = SilentNStateSSR(4)
        states = [3, 1, 0, 2]
        assert protocol.is_correct(states)
        assert naming_correct(protocol, states)
        assert has_unique_leader(protocol, states)

    def test_naming_weaker_than_ranking(self):
        """Distinct ranks not covering {1..n}: naming yes, ranking no."""
        # Simulate with rank_of output directly: a protocol whose output
        # happens to be {2, 3, 4} on n=3 would name but not rank.
        assert names_are_unique([2, 3, 4])
        from repro.core.configuration import ranks_are_permutation

        assert not ranks_are_permutation([2, 3, 4], 3)


class TestSublinearNamesView:
    def test_resetting_agents_have_no_name(self):
        states = [
            SublinearAgent(role=SubRole.RESETTING, name=""),
            SublinearAgent(role=SubRole.COLLECTING, name="0101"),
        ]
        assert sublinear_names_view(states) == [None, "0101"]

    def test_names_stabilize_before_ranks(self):
        """Sublinear-Time-SSR solves naming strictly earlier than ranking.

        From a clean unique-name start the *names* are correct from
        interaction 0, while ranks wait for rosters to fill.
        """
        protocol = SublinearTimeSSR(6, h=1)
        rng = make_rng(1, "naming")
        states = protocol.unique_names_configuration(rng)
        assert names_are_unique(sublinear_names_view(states))
        assert not protocol.is_correct(states)  # ranks all default to 1

        sim = Simulation(protocol, states, rng=rng)
        naming_time = 0.0  # already naming-correct
        budget = 500_000
        while not protocol.is_correct(sim.states):
            assert sim.interactions < budget
            sim.step()
        assert sim.parallel_time > naming_time
        # And naming stayed correct the whole way (no reset was needed).
        assert names_are_unique(sublinear_names_view(sim.states))


class TestNamingOnlyProtocol:
    def test_tokens_distinct_iff_ranks_distinct(self, rng):
        inner = SilentNStateSSR(5)
        wrapper = NamingOnlyProtocol(inner)
        correct = [0, 1, 2, 3, 4]
        tokens = [wrapper.token_of(s) for s in correct]
        assert names_are_unique(tokens)
        assert wrapper.is_correct(correct)
        assert not wrapper.is_correct([0, 0, 2, 3, 4])

    def test_tokens_censor_order(self):
        inner = SilentNStateSSR(5)
        wrapper = NamingOnlyProtocol(inner)
        tokens = [wrapper.token_of(s) for s in [0, 1, 2, 3, 4]]
        # The token sequence is not monotone in rank (order destroyed).
        assert tokens != sorted(tokens)
        # And the wrapper exposes no rank at all.
        assert wrapper.rank_of(2) is None

    def test_dynamics_unchanged(self, rng):
        inner = SilentNStateSSR(5)
        wrapper = NamingOnlyProtocol(inner)
        assert wrapper.transition(3, 3, rng) == inner.transition(3, 3, rng)
        assert wrapper.is_pair_null(1, 2)
        assert wrapper.silent

    def test_wrapper_still_stabilizes_as_naming(self, rng):
        inner = SilentNStateSSR(6)
        wrapper = NamingOnlyProtocol(inner)
        sim = Simulation(wrapper, [0] * 6, rng=rng)
        budget = 2_000_000
        while not wrapper.is_correct(sim.states):
            assert sim.interactions < budget
            sim.step()

    def test_next_prime(self):
        assert _next_prime(2) == 2
        assert _next_prime(8) == 11
        assert _next_prime(14) == 17
