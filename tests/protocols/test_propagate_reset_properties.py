"""Property-based fuzzing of Propagate-Reset's pair semantics.

Hypothesis drives single interactions between arbitrary (adversarial)
agent pairs and checks the postconditions that the paper's analysis
leans on.  Complements the example-based tests in
``test_propagate_reset.py``.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import make_rng
from repro.protocols.parameters import ResetParameters
from repro.protocols.propagate_reset import (
    ResetTimingProtocol,
    TimingAgent,
    TimingRole,
    propagate_reset_interaction,
)

PARAMS = ResetParameters(r_max=7, d_max=12)


@st.composite
def agents(draw):
    """Any state in the protocol's declared space (computing or resetting)."""
    if draw(st.booleans()):
        return TimingAgent(role=TimingRole.COMPUTING, generation=draw(st.integers(0, 3)))
    resetcount = draw(st.integers(0, PARAMS.r_max))
    delaytimer = draw(st.integers(0, PARAMS.d_max)) if resetcount == 0 else 0
    return TimingAgent(
        role=TimingRole.RESETTING,
        resetcount=resetcount,
        delaytimer=delaytimer,
        generation=draw(st.integers(0, 3)),
    )


def interact(a: TimingAgent, b: TimingAgent):
    protocol = ResetTimingProtocol(10, PARAMS)
    propagate_reset_interaction(a, b, PARAMS, protocol.hooks, make_rng(0, "prop"))
    return a, b


@given(a=agents(), b=agents())
@settings(max_examples=300, deadline=None)
def test_postconditions(a, b):
    pre_a, pre_b = copy.deepcopy(a), copy.deepcopy(b)
    if (
        pre_a.role is TimingRole.COMPUTING
        and pre_b.role is TimingRole.COMPUTING
    ):
        return  # precondition of the subprotocol: skip

    interact(a, b)

    for agent, pre in ((a, pre_a), (b, pre_b)):
        # Domains always respected.
        assert 0 <= agent.resetcount <= PARAMS.r_max
        assert 0 <= agent.delaytimer <= PARAMS.d_max
        # Field hygiene: non-resetting agents carry no reset fields, and
        # propagating agents carry no delay timer.
        if agent.role is TimingRole.COMPUTING:
            assert agent.resetcount == 0 and agent.delaytimer == 0
        if agent.role is TimingRole.RESETTING and agent.resetcount > 0:
            assert agent.delaytimer == 0
        # Generations only move forward, by at most one per interaction.
        assert agent.generation in (pre.generation, pre.generation + 1)
        # A reset happened iff the agent returned to computing from
        # resetting (never spontaneously).
        if agent.generation == pre.generation + 1:
            assert pre.role is TimingRole.RESETTING or (
                # ...or it was recruited and reset in the same interaction
                # (possible when the partner resets first: awaken-by-epidemic).
                pre.role is TimingRole.COMPUTING
            )

    # Count merging: if both were resetting with some propagation, the
    # resulting counts are equal and strictly below the prior maximum.
    if (
        pre_a.role is TimingRole.RESETTING
        and pre_b.role is TimingRole.RESETTING
        and max(pre_a.resetcount, pre_b.resetcount) > 0
    ):
        merged = max(pre_a.resetcount, pre_b.resetcount) - 1
        for agent in (a, b):
            if agent.role is TimingRole.RESETTING:
                assert agent.resetcount == merged

    # A triggered-strength count never appears out of thin air: the
    # subprotocol itself only ever decreases counts.
    assert max(a.resetcount, b.resetcount) <= max(
        pre_a.resetcount, pre_b.resetcount
    )


@given(a=agents(), b=agents())
@settings(max_examples=200, deadline=None)
def test_interaction_is_deterministic(a, b):
    if a.role is TimingRole.COMPUTING and b.role is TimingRole.COMPUTING:
        return
    a1, b1 = copy.deepcopy(a), copy.deepcopy(b)
    a2, b2 = copy.deepcopy(a), copy.deepcopy(b)
    interact(a1, b1)
    interact(a2, b2)
    assert (a1, b1) == (a2, b2)
