"""Tests for the history-tree data structure (Section 5.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.sublinear.history_tree import HistoryTree, TreeEdge, path_names


def leaf(name: str) -> HistoryTree:
    return HistoryTree.singleton(name)


def edge(sync: int, child: HistoryTree, expires: int = 100) -> TreeEdge:
    return TreeEdge(sync=sync, expires=expires, child=child)


def chain(*names_and_syncs) -> HistoryTree:
    """chain("a", 1, "b", 2, "c") -> a -1-> b -2-> c."""
    names = names_and_syncs[::2]
    syncs = names_and_syncs[1::2]
    node = leaf(names[-1])
    for name, sync in zip(reversed(names[:-1]), reversed(syncs)):
        parent = leaf(name)
        parent.graft(node, sync=sync, expires=100)
        node = parent
    return node


class TestBasics:
    def test_singleton(self):
        tree = leaf("a")
        assert tree.depth() == 0
        assert tree.size() == 1
        assert tree.edges == []

    def test_depth_and_size(self):
        tree = chain("a", 1, "b", 2, "c")
        tree.graft(leaf("d"), sync=3, expires=100)
        assert tree.depth() == 2
        assert tree.size() == 4

    def test_find_child(self):
        tree = chain("a", 1, "b")
        assert tree.find_child("b").sync == 1
        assert tree.find_child("z") is None

    def test_iter_edges_counts(self):
        tree = chain("a", 1, "b", 2, "c")
        assert len(list(tree.iter_edges())) == 2


class TestCopy:
    def test_truncation_to_depth(self):
        tree = chain("a", 1, "b", 2, "c", 3, "d")
        copy = tree.copy(2)
        assert copy.depth() == 2
        assert copy.find_child("b").child.find_child("c").child.edges == []

    def test_depth_zero_copy_is_root_only(self):
        tree = chain("a", 1, "b")
        assert tree.copy(0).size() == 1

    def test_copy_is_deep(self):
        tree = chain("a", 1, "b")
        copy = tree.copy(5)
        copy.find_child("b").sync = 999
        assert tree.find_child("b").sync == 1

    def test_clock_shift_translates_expiries(self):
        tree = chain("a", 1, "b")
        tree.find_child("b").expires = 30
        copy = tree.copy(1, clock_shift=-10)
        assert copy.find_child("b").expires == 20
        # Remaining lifetime is preserved across owners' clocks:
        # source owner at clock 25 -> remaining 5; recipient at 15 -> 5.
        assert tree.find_child("b").remaining(25) == copy.find_child("b").remaining(15)

    def test_exclude_name_prunes_subtrees(self):
        tree = leaf("a")
        tree.graft(chain("b", 2, "x"), sync=1, expires=100)
        tree.graft(leaf("x"), sync=3, expires=100)
        copy = tree.copy(3, exclude_name="x")
        assert copy.find_child("x") is None
        assert copy.find_child("b").child.edges == []  # b's x-child gone


class TestMutation:
    def test_remove_child(self):
        tree = leaf("a")
        tree.graft(leaf("b"), sync=1, expires=100)
        tree.graft(leaf("c"), sync=2, expires=100)
        tree.remove_child("b")
        assert tree.find_child("b") is None
        assert tree.find_child("c") is not None

    def test_remove_named_subtrees_any_depth(self):
        tree = leaf("a")
        tree.graft(chain("b", 2, "a"), sync=1, expires=100)  # a below b
        tree.remove_named_subtrees("a")
        assert tree.find_child("b") is not None
        assert tree.find_child("b").child.edges == []
        assert tree.name == "a"  # root untouched

    def test_graft_appends(self):
        tree = leaf("a")
        tree.graft(leaf("b"), sync=7, expires=42)
        assert tree.edges[0].sync == 7
        assert tree.edges[0].expires == 42


class TestPathsToName:
    def test_finds_all_paths(self):
        tree = leaf("a")
        tree.graft(chain("b", 5, "x"), sync=1, expires=100)
        tree.graft(chain("c", 6, "x"), sync=2, expires=100)
        paths = list(tree.paths_to_name("x", clock=0))
        assert sorted([e.sync for e in p] for p in paths) == [[1, 5], [2, 6]]

    def test_intermediate_nodes_match_too(self):
        tree = chain("a", 1, "b", 2, "c")
        paths = list(tree.paths_to_name("b", clock=0))
        assert [[e.sync for e in p] for p in paths] == [[1]]

    def test_root_never_matches(self):
        tree = chain("a", 1, "b")
        assert list(tree.paths_to_name("a", clock=0)) == []

    def test_dead_edge_kills_descendant_paths(self):
        tree = leaf("a")
        tree.graft(chain("b", 5, "x"), sync=1, expires=10)
        assert list(tree.paths_to_name("x", clock=5))  # alive at clock 5
        assert not list(tree.paths_to_name("x", clock=10))  # top edge expired

    def test_dead_deep_edge_also_kills(self):
        tree = leaf("a")
        sub = leaf("b")
        sub.graft(leaf("x"), sync=5, expires=3)
        tree.graft(sub, sync=1, expires=100)
        assert not list(tree.paths_to_name("x", clock=3))
        assert list(tree.paths_to_name("b", clock=3))  # shorter path alive

    def test_path_names_helper(self):
        tree = chain("a", 1, "b", 2, "c")
        (path,) = tree.paths_to_name("c", clock=0)
        assert path_names(path, "a") == ["a", "b", "c"]


class TestInvariants:
    def test_simply_labelled_true(self):
        tree = leaf("a")
        tree.graft(chain("b", 1, "c"), sync=1, expires=100)
        tree.graft(chain("c", 1, "b"), sync=2, expires=100)  # incomparable dup ok
        assert tree.is_simply_labelled()

    def test_simply_labelled_false_on_path_repeat(self):
        tree = chain("a", 1, "b", 2, "a")
        assert not tree.is_simply_labelled()

    def test_contains_name(self):
        tree = chain("a", 1, "b", 2, "c")
        assert tree.contains_name("c")
        assert not tree.contains_name("a")  # below root only by default
        assert tree.contains_name("a", below_root=False)

    def test_canonical_order_insensitive(self):
        t1 = leaf("a")
        t1.graft(leaf("b"), sync=1, expires=100)
        t1.graft(leaf("c"), sync=2, expires=100)
        t2 = leaf("a")
        t2.graft(leaf("c"), sync=2, expires=100)
        t2.graft(leaf("b"), sync=1, expires=100)
        assert t1.canonical(0) == t2.canonical(0)

    def test_canonical_uses_remaining_not_absolute(self):
        t1 = leaf("a")
        t1.graft(leaf("b"), sync=1, expires=30)
        t2 = leaf("a")
        t2.graft(leaf("b"), sync=1, expires=20)
        assert t1.canonical(clock=20) == t2.canonical(clock=10)
        assert t1.canonical(clock=0) != t2.canonical(clock=0)


class TestRender:
    def test_render_mentions_all_nodes_and_syncs(self):
        tree = chain("a", 7, "b", 2, "c")
        rendered = tree.render()
        for token in ("a", "b", "c", "sync=7", "sync=2"):
            assert token in rendered


@st.composite
def random_trees(draw, depth=3):
    name = draw(st.sampled_from("abcdefgh"))
    node = HistoryTree.singleton(name)
    if depth > 0:
        for _ in range(draw(st.integers(0, 2))):
            child = draw(random_trees(depth=depth - 1))
            node.graft(
                child,
                sync=draw(st.integers(1, 50)),
                expires=draw(st.integers(0, 20)),
            )
    return node


class TestProperties:
    @given(tree=random_trees())
    @settings(max_examples=60, deadline=None)
    def test_copy_preserves_canonical(self, tree):
        assert tree.copy(10).canonical(0) == tree.canonical(0)

    @given(tree=random_trees(), name=st.sampled_from("abcdefgh"))
    @settings(max_examples=60, deadline=None)
    def test_remove_named_subtrees_removes_all(self, tree, name):
        tree.remove_named_subtrees(name)
        assert not tree.contains_name(name)

    @given(tree=random_trees())
    @settings(max_examples=60, deadline=None)
    def test_size_consistent_with_edge_count(self, tree):
        assert tree.size() == 1 + len(list(tree.iter_edges()))

    @given(tree=random_trees(), clock=st.integers(0, 25))
    @settings(max_examples=60, deadline=None)
    def test_paths_all_live_and_end_at_target(self, tree, clock):
        for target in "abcdefgh":
            for path in tree.paths_to_name(target, clock):
                assert path[-1].child.name == target
                assert all(e.expires > clock for e in path)
