"""Tests for Protocol 8 (Check-Path-Consistency)."""

import pytest

from repro.protocols.sublinear.consistency import (
    CONSISTENT,
    INCONSISTENT,
    check_path_consistency,
)
from repro.protocols.sublinear.history_tree import HistoryTree


def leaf(name):
    return HistoryTree.singleton(name)


def chain(*names_and_syncs) -> HistoryTree:
    names = names_and_syncs[::2]
    syncs = names_and_syncs[1::2]
    node = leaf(names[-1])
    for name, sync in zip(reversed(names[:-1]), reversed(syncs)):
        parent = leaf(name)
        parent.graft(node, sync=sync, expires=100)
        node = parent
    return node


def path_of(tree: HistoryTree, target: str):
    (path,) = tree.paths_to_name(target, clock=0)
    return path


class TestValidation:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            check_path_consistency(leaf("a"), [], "i")

    def test_wrong_verifier_rejected(self):
        d_tree = chain("d", 3, "a")
        with pytest.raises(ValueError):
            check_path_consistency(leaf("z"), path_of(d_tree, "a"), "d")


class TestFigure2Scenarios:
    def test_left_panel_match_at_first_compared_edge(self):
        # d: d -3-> c -2-> b -1-> a; a: a -1-> b.
        d_tree = chain("d", 3, "c", 2, "b", 1, "a")
        a_tree = chain("a", 1, "b")
        verdict = check_path_consistency(a_tree, path_of(d_tree, "a"), "d")
        assert verdict is CONSISTENT

    def test_right_panel_match_at_second_compared_edge(self):
        # a overwrote the a-b sync (7), but learned b's b-c record (2).
        d_tree = chain("d", 3, "c", 2, "b", 1, "a")
        a_tree = chain("a", 7, "b", 2, "c")
        verdict = check_path_consistency(a_tree, path_of(d_tree, "a"), "d")
        assert verdict is CONSISTENT

    def test_impostor_with_empty_tree_is_inconsistent(self):
        d_tree = chain("d", 3, "c", 2, "b", 1, "a")
        verdict = check_path_consistency(leaf("a"), path_of(d_tree, "a"), "d")
        assert verdict is INCONSISTENT

    def test_impostor_with_wrong_syncs_is_inconsistent(self):
        d_tree = chain("d", 3, "c", 2, "b", 1, "a")
        impostor = chain("a", 9, "b", 8, "c")  # no sync matches
        verdict = check_path_consistency(impostor, path_of(d_tree, "a"), "d")
        assert verdict is INCONSISTENT


class TestWalkSemantics:
    def test_walk_stops_at_longest_existing_suffix(self):
        # Verifier only knows one reversed step; it matches -> consistent.
        i_tree = chain("i", 5, "b", 4, "j")
        j_tree = chain("j", 4, "b")
        assert check_path_consistency(j_tree, path_of(i_tree, "j"), "i") is CONSISTENT

    def test_deep_match_beyond_mismatches(self):
        i_tree = chain("i", 1, "x", 2, "y", 3, "j")
        # Verifier's syncs differ at every level except the deepest.
        j_tree = chain("j", 9, "y", 8, "x", 1, "i")
        assert check_path_consistency(j_tree, path_of(i_tree, "j"), "i") is CONSISTENT

    def test_match_must_be_at_corresponding_position(self):
        # The sync value 3 appears in the verifier's tree but at the wrong
        # position of the reversed walk, so it must NOT count.
        i_tree = chain("i", 9, "b", 3, "j")
        j_tree = chain("j", 9, "b")  # j-b sync is 9, not 3
        assert (
            check_path_consistency(j_tree, path_of(i_tree, "j"), "i") is INCONSISTENT
        )

    def test_branchy_verifier_any_matching_branch_counts(self):
        # Adversarial verifier tree with two children named b: one branch
        # matches, so the check passes.
        i_tree = chain("i", 5, "b", 4, "j")
        j_tree = leaf("j")
        j_tree.graft(leaf("b"), sync=1, expires=100)
        j_tree.graft(leaf("b"), sync=4, expires=100)
        assert check_path_consistency(j_tree, path_of(i_tree, "j"), "i") is CONSISTENT

    def test_verifier_edges_may_be_expired(self):
        # Only the accuser's path needs live timers; the verifier's own
        # record still certifies consistency even when stale.
        i_tree = chain("i", 4, "j")
        j_tree = leaf("j")
        j_tree.graft(leaf("i"), sync=4, expires=0)  # long expired
        assert check_path_consistency(j_tree, path_of(i_tree, "j"), "i") is CONSISTENT
