"""Tests for leader election derived from ranking (footnote 7)."""

import random
from typing import Optional, Tuple

from repro.protocols.base import RankingProtocol
from repro.protocols.cai_izumi_wada import SilentNStateSSR
from repro.protocols.leader import (
    ImmobilizedLeaderProtocol,
    count_leaders,
    has_unique_leader,
    leader_flags,
)


class TestLeaderPredicates:
    def test_flags_and_count(self):
        protocol = SilentNStateSSR(4)
        states = [0, 1, 2, 3]  # rank_of(0) == 1: agent 0 leads
        assert leader_flags(protocol, states) == [True, False, False, False]
        assert count_leaders(protocol, states) == 1
        assert has_unique_leader(protocol, states)

    def test_multiple_leaders_detected(self):
        protocol = SilentNStateSSR(4)
        assert count_leaders(protocol, [0, 0, 1, 2]) == 2
        assert not has_unique_leader(protocol, [0, 0, 1, 2])


class HotPotatoProtocol(RankingProtocol[int]):
    """Toy protocol whose leader bit hops to the responder every meeting.

    State n-1 encodes "leader" (rank 1); everyone else holds rank None.
    Used to exercise the immobilization transform.
    """

    def transition(self, initiator: int, responder: int, rng) -> Tuple[int, int]:
        if initiator == 1 and responder == 0:
            return 0, 1  # leadership hops initiator -> responder
        return initiator, responder

    def initial_state(self, rng) -> int:
        return 0

    def random_state(self, rng) -> int:
        return rng.randrange(2)

    def rank_of(self, state: int) -> Optional[int]:
        return 1 if state == 1 else None

    def summarize(self, state: int):
        return state


class TestImmobilizedLeaderProtocol:
    def test_wrapper_pins_the_leader(self):
        rng = random.Random(1)
        inner = HotPotatoProtocol(3)
        wrapped = ImmobilizedLeaderProtocol(inner)
        # Inner protocol: leader hops from initiator to responder.
        assert inner.transition(1, 0, rng) == (0, 1)
        # Wrapped: states are swapped back, so agent 0 keeps leading.
        assert wrapped.transition(1, 0, rng) == (1, 0)

    def test_non_transfer_interactions_untouched(self):
        rng = random.Random(1)
        wrapped = ImmobilizedLeaderProtocol(HotPotatoProtocol(3))
        assert wrapped.transition(0, 0, rng) == (0, 0)
        assert wrapped.transition(0, 1, rng) == (0, 1)

    def test_leader_never_moves_over_a_run(self):
        rng = random.Random(7)
        wrapped = ImmobilizedLeaderProtocol(HotPotatoProtocol(5))
        states = [1, 0, 0, 0, 0]
        for _ in range(500):
            i = rng.randrange(5)
            j = (i + 1 + rng.randrange(4)) % 5
            states[i], states[j] = wrapped.transition(states[i], states[j], rng)
        assert states[0] == 1
        assert count_leaders(wrapped, states) == 1

    def test_delegation(self, rng):
        inner = SilentNStateSSR(4)
        wrapped = ImmobilizedLeaderProtocol(inner)
        assert wrapped.n == 4
        assert wrapped.silent
        assert wrapped.state_count() == 4
        assert wrapped.rank_of(2) == 3
        assert wrapped.is_pair_null(1, 2)
        assert wrapped.describe(0) == inner.describe(0)
        assert wrapped.initial_state(rng) == 0

    def test_wrapped_result_is_permutation_of_inner_result(self, rng):
        """Immobilization only ever swaps the two post-states."""
        inner = SilentNStateSSR(5)
        wrapped = ImmobilizedLeaderProtocol(inner)
        states = [0, 0, 1, 2, 3]
        for _ in range(300):
            i = rng.randrange(5)
            j = (i + 1 + rng.randrange(4)) % 5
            plain = sorted(inner.transition(states[i], states[j], rng))
            states[i], states[j] = wrapped.transition(states[i], states[j], rng)
            assert sorted([states[i], states[j]]) == plain
