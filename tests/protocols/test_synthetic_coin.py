"""Tests for the synthetic-coin derandomization (paper footnotes 5-6)."""

import math

import pytest

from repro.core.rng import make_rng
from repro.experiments.common import measure_convergence
from repro.protocols.sublinear.protocol import SubRole, SublinearTimeSSR
from repro.protocols.synthetic_coin import (
    coin_stream,
    measure_coin_bias,
    partner_coin_bit,
    toggle,
)


class TestPrimitives:
    def test_toggle(self):
        assert toggle(0) == 1
        assert toggle(1) == 0

    def test_partner_coin_bit_masks(self):
        assert partner_coin_bit(0) == 0
        assert partner_coin_bit(1) == 1

    def test_measure_validation(self, rng):
        with pytest.raises(ValueError):
            measure_coin_bias(1, 100, rng)
        with pytest.raises(ValueError):
            measure_coin_bias(8, 10, rng, sample_after=10)


class TestBiasDecay:
    def test_bias_small_after_mixing(self):
        n = 64
        rng = make_rng(3, "coin-mix")
        burn_in = int(4 * n * math.log(n))
        bias = measure_coin_bias(n, burn_in + 40_000, rng, sample_after=burn_in)
        assert bias < 0.02

    def test_worst_case_start_is_biased_early(self):
        # From all-zeros, the earliest observations are mostly 0s (an
        # observed coin is 1 only if its owner already interacted an odd
        # number of times).
        n = 64
        rng = make_rng(4, "coin-early")
        bias = measure_coin_bias(n, 8, rng, sample_after=0)
        assert bias > 0.2

    def test_stream_has_both_values_and_no_strong_serial_bias(self):
        n = 32
        rng = make_rng(5, "coin-stream")
        bits, _ = coin_stream(n, 20_000, rng, burn_in=2_000)
        ones = sum(bits)
        assert abs(ones / len(bits) - 0.5) < 0.02
        # Lag-1 correlation of the consumed stream stays mild.
        agree = sum(1 for x, y in zip(bits, bits[1:]) if x == y)
        assert abs(agree / (len(bits) - 1) - 0.5) < 0.05


class TestDerandomizedNames:
    def test_flag_disables_silence(self):
        assert SublinearTimeSSR(6, h=0).silent
        assert not SublinearTimeSSR(6, h=0, deterministic_names=True).silent

    def test_coins_flip_each_interaction(self, rng):
        p = SublinearTimeSSR(4, h=1, deterministic_names=True)
        a = p.initial_state(rng)
        b = p.initial_state(rng)
        coins = (a.coin, b.coin)
        p.transition(a, b, rng)
        assert (a.coin, b.coin) == (coins[0] ^ 1, coins[1] ^ 1)

    def test_default_protocol_keeps_coins_static(self, rng):
        p = SublinearTimeSSR(4, h=1)
        a, b = p.initial_state(rng), p.initial_state(rng)
        p.transition(a, b, rng)
        assert (a.coin, b.coin) == (0, 0)

    def test_dormant_agents_grow_names_from_partner_coins(self, rng):
        from repro.protocols.sublinear.protocol import SublinearAgent

        p = SublinearTimeSSR(4, h=1, deterministic_names=True)
        a = SublinearAgent(
            role=SubRole.RESETTING, name="", resetcount=0, delaytimer=50, coin=0
        )
        b = SublinearAgent(
            role=SubRole.RESETTING, name="", resetcount=0, delaytimer=50, coin=1
        )
        p.transition(a, b, rng)
        assert a.name == "1"  # b's pre-flip coin
        assert b.name == "0"  # a's pre-flip coin

    @pytest.mark.slow
    def test_derandomized_protocol_still_stabilizes(self):
        p = SublinearTimeSSR(6, h=1, deterministic_names=True)
        rng = make_rng(6, "coin-stab")
        outcome = measure_convergence(
            p,
            p.random_configuration(rng),
            rng=rng,
            max_time=60_000.0,
            confirm_time=40.0,
        )
        assert outcome.converged

    @pytest.mark.slow
    def test_derandomized_names_are_diverse_after_reset(self):
        """A forced reset regrows names with real entropy (no all-equal)."""
        from repro.core.simulation import Simulation
        from repro.experiments.hsweep import collision_start

        p = SublinearTimeSSR(6, h=1, deterministic_names=True)
        rng = make_rng(7, "coin-names")
        states = collision_start(p, rng)
        # Randomize coins so the wave starts with ambient entropy.
        for index, state in enumerate(states):
            state.coin = index % 2
        monitor = p.convergence_monitor()
        sim = Simulation(p, states, rng=rng, monitors=[monitor])
        budget = 400_000
        while not (
            monitor.correct
            and monitor.correct_streak(sim.interactions) > 40 * p.n
        ):
            assert sim.interactions < budget
            sim.step()
        names = {s.name for s in sim.states}
        assert len(names) == p.n
