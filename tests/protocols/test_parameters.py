"""Tests for the protocol parameter sets."""

import math

import pytest

from repro.protocols.parameters import (
    OptimalSilentParameters,
    ResetParameters,
    SublinearParameters,
    calibrated_optimal_silent,
    calibrated_reset_linear_delay,
    calibrated_reset_log_delay,
    calibrated_sublinear,
    log2n_bits,
    paper_optimal_silent,
    paper_reset_linear_delay,
    paper_reset_log_delay,
    paper_sublinear,
    tau_timer,
)


class TestValidation:
    def test_reset_parameters_positive(self):
        with pytest.raises(ValueError):
            ResetParameters(r_max=0, d_max=10)
        with pytest.raises(ValueError):
            ResetParameters(r_max=5, d_max=0)

    def test_optimal_silent_e_max_positive(self):
        with pytest.raises(ValueError):
            OptimalSilentParameters(reset=ResetParameters(5, 10), e_max=0)

    def test_sublinear_fields_validated(self):
        reset = ResetParameters(5, 50)
        with pytest.raises(ValueError):
            SublinearParameters(reset=reset, name_bits=0, h=1, s_max=16, t_h=4)
        with pytest.raises(ValueError):
            SublinearParameters(reset=reset, name_bits=6, h=-1, s_max=16, t_h=4)
        with pytest.raises(ValueError):
            SublinearParameters(reset=reset, name_bits=6, h=1, s_max=1, t_h=4)
        with pytest.raises(ValueError):
            SublinearParameters(reset=reset, name_bits=6, h=1, s_max=16, t_h=0)


class TestNameBits:
    def test_three_log2_n(self):
        assert log2n_bits(16) == 12
        assert log2n_bits(17) == 15  # ceil(log2 17) = 5
        with pytest.raises(ValueError):
            log2n_bits(1)

    def test_name_space_cubic(self):
        # 2^(3 log2 n) >= n^3: enough for whp collision-free renaming.
        for n in (8, 16, 100):
            assert 2 ** log2n_bits(n) >= n**3


class TestTauTimer:
    def test_single_formula_covers_both_regimes(self):
        n = 1024
        # Constant H: ~ scale * (H+1) * n^(1/(H+1)).
        assert tau_timer(n, 1, scale=1.0) == math.ceil(2 * n**0.5)
        # H = log2 n: the power term is O(1), so Theta(log n) overall.
        h = 10
        assert tau_timer(n, h, scale=1.0) <= 4 * (h + 1)

    def test_floor(self):
        assert tau_timer(2, 0, scale=0.1) >= 4


class TestDerivedSets:
    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_paper_and_calibrated_share_asymptotic_form(self, n):
        for factory in (paper_reset_linear_delay, calibrated_reset_linear_delay):
            params = factory(n)
            assert params.d_max >= 2 * params.r_max  # D_max = Omega(R_max)
            assert params.d_max >= n  # Theta(n) dormancy
        for factory in (paper_reset_log_delay, calibrated_reset_log_delay):
            params = factory(n)
            assert params.d_max >= 2 * params.r_max
            assert params.d_max <= 200 * math.log(max(n, 2))  # Theta(log n)

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_optimal_silent_e_max_linear(self, n):
        for factory in (paper_optimal_silent, calibrated_optimal_silent):
            params = factory(n)
            assert params.e_max >= 8 * n  # ranking fits with slack

    @pytest.mark.parametrize("n,h", [(8, 0), (8, 1), (16, 2), (16, 4)])
    def test_sublinear_dormancy_fits_renaming(self, n, h):
        for factory in (paper_sublinear, calibrated_sublinear):
            params = factory(n, h)
            # Dormant agents append one name bit per interaction: the
            # delay must leave room to regrow a full name.
            assert params.reset.d_max >= params.name_bits
            assert params.h == h
            assert params.s_max >= n * n  # Theta(n^2) sync values

    def test_paper_r_max_is_60_ln_n(self):
        n = 100
        assert paper_reset_log_delay(n).r_max == math.ceil(60 * math.log(n))

    def test_calibrated_r_max_exceeds_recruitment_epidemic(self):
        # The recruitment epidemic takes ~4 ln n own-interactions (whp);
        # the calibrated margin keeps waves from fragmenting.
        for n in (16, 64, 256):
            assert calibrated_reset_log_delay(n).r_max >= 5 * math.log(n)
