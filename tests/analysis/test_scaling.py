"""Tests for repro.analysis.scaling."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scaling import (
    fit_logarithm,
    fit_power_law,
    successive_ratios,
)


class TestFitPowerLaw:
    def test_recovers_exact_power_law(self):
        xs = [4, 8, 16, 32]
        ys = [3.0 * x**1.7 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.7, abs=1e-9)
        assert fit.constant == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([2, 4, 8], [4, 16, 64])
        assert fit.predict(16) == pytest.approx(256, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, -2])
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 1])

    @given(
        exponent=st.floats(-2, 3),
        constant=st.floats(0.1, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, exponent, constant):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [constant * x**exponent for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)


class TestFitLogarithm:
    def test_recovers_exact_log(self):
        xs = [4, 8, 16, 32]
        ys = [2.0 + 5.0 * math.log(x) for x in xs]
        fit = fit_logarithm(xs, ys)
        assert fit.slope == pytest.approx(5.0, abs=1e-9)
        assert fit.intercept == pytest.approx(2.0, abs=1e-9)
        assert fit.predict(64) == pytest.approx(2.0 + 5.0 * math.log(64))

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_logarithm([0, 2], [1, 1])


class TestSuccessiveRatios:
    def test_doubling_ratio(self):
        assert successive_ratios([2, 4, 8], [10, 40, 160]) == pytest.approx(
            [4.0, 4.0]
        )

    def test_normalizes_to_per_doubling(self):
        # x quadruples, y x16: per-doubling ratio 4.
        assert successive_ratios([2, 8], [10, 160]) == pytest.approx([4.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            successive_ratios([2], [1])
        with pytest.raises(ValueError):
            successive_ratios([4, 2], [1, 1])
        with pytest.raises(ValueError):
            successive_ratios([2, 4], [0, 1])
