"""Tests for the roll-call and coupon-collector processes."""

import pytest

from repro.analysis.coupon import (
    coupon_collector_expected_time,
    simulate_coupon_collector,
    simulate_slow_leader_election,
    slow_leader_election_expected_time,
)
from repro.analysis.epidemic import simulate_two_way_epidemic
from repro.analysis.rollcall import rollcall_expected_time_estimate, simulate_rollcall
from repro.core.rng import make_rng


class TestRollcall:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_rollcall(1, rng)

    def test_two_agents_complete_on_first_meeting(self, rng):
        assert simulate_rollcall(2, rng) == 1

    def test_budget_guard(self, rng):
        with pytest.raises(RuntimeError):
            simulate_rollcall(16, rng, max_interactions=2)

    def test_rollcall_slower_than_epidemic_but_same_order(self):
        n, trials = 128, 60
        rollcall = sum(
            simulate_rollcall(n, make_rng(1, "rc", t)) for t in range(trials)
        )
        epidemic = sum(
            simulate_two_way_epidemic(n, make_rng(1, "ep", t)) for t in range(trials)
        )
        ratio = rollcall / epidemic
        assert 1.1 <= ratio <= 2.2  # ~1.5 per the paper

    def test_estimate_helper(self):
        assert rollcall_expected_time_estimate(64) == pytest.approx(
            1.5 * 4.648, rel=0.05
        )


class TestCouponCollector:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_coupon_collector(0, rng)

    def test_single_coupon(self, rng):
        assert simulate_coupon_collector(1, rng) == 1

    def test_mean_matches_n_h_n(self):
        n, trials = 20, 800
        total = sum(
            simulate_coupon_collector(n, make_rng(2, "cc", t)) for t in range(trials)
        )
        assert total / trials == pytest.approx(
            coupon_collector_expected_time(n), rel=0.05
        )


class TestSlowLeaderElection:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_slow_leader_election(5, rng, initial_leaders=6)
        with pytest.raises(ValueError):
            slow_leader_election_expected_time(5, initial_leaders=-1)

    def test_single_leader_needs_no_interaction(self, rng):
        assert simulate_slow_leader_election(5, rng, initial_leaders=1) == 0

    def test_expected_time_closed_form(self):
        # E[time] = (n - 1)(1 - 1/L).
        assert slow_leader_election_expected_time(10) == pytest.approx(8.1)
        assert slow_leader_election_expected_time(10, initial_leaders=2) == pytest.approx(
            4.5
        )

    def test_mean_matches_closed_form(self):
        n, trials = 16, 600
        total = sum(
            simulate_slow_leader_election(n, make_rng(3, "sle", t))
            for t in range(trials)
        )
        measured_time = total / trials / n
        assert measured_time == pytest.approx(
            slow_leader_election_expected_time(n), rel=0.1
        )

    def test_linear_in_n(self):
        # The Theta(n) fact that forces D_max = Theta(n) in Section 4.
        times = []
        for n in (16, 32, 64):
            trials = 200
            total = sum(
                simulate_slow_leader_election(n, make_rng(4, "sle", n, t))
                for t in range(trials)
            )
            times.append(total / trials / n)
        assert times[1] / times[0] == pytest.approx(2.0, rel=0.25)
        assert times[2] / times[1] == pytest.approx(2.0, rel=0.25)
