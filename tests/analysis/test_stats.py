"""Tests for repro.analysis.stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    bootstrap_mean_ci,
    geometric_mean,
    mean,
    quantile,
    sample_std,
    summarize_trials,
    tail_fraction,
)
from repro.core.rng import make_rng


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_sample_std(self):
        assert sample_std([5.0]) == 0.0
        assert sample_std([2.0, 4.0]) == pytest.approx(2.0**0.5)
        with pytest.raises(ValueError):
            sample_std([])

    def test_quantile_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert quantile(data, 0.0) == 1.0
        assert quantile(data, 1.0) == 4.0
        assert quantile(data, 0.5) == 2.5
        with pytest.raises(ValueError):
            quantile(data, 1.5)
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_quantile_order_independent(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestSummarizeTrials:
    def test_fields(self):
        summary = summarize_trials([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5

    def test_singleton_has_infinite_ci(self):
        assert summarize_trials([3.0]).ci95_halfwidth == float("inf")

    def test_str_is_compact(self):
        text = str(summarize_trials([1.0, 2.0]))
        assert "mean=" in text and "x2" in text

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, values):
        summary = summarize_trials(values)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.median <= summary.q90 <= summary.q99 <= summary.maximum
        assert summary.minimum <= summary.mean <= summary.maximum


class TestBootstrap:
    def test_interval_brackets_mean_usually(self):
        rng = make_rng(1, "boot")
        data = [rng.gauss(10, 2) for _ in range(60)]
        low, high = bootstrap_mean_ci(data, make_rng(2, "boot"), resamples=400)
        assert low < mean(data) < high
        assert high - low < 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], make_rng(1, "x"))
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0, 2.0], make_rng(1, "x"), confidence=1.5)


class TestTailAndGeometricMean:
    def test_tail_fraction(self):
        assert tail_fraction([1, 2, 3, 4], 3) == 0.5
        with pytest.raises(ValueError):
            tail_fraction([], 1)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])
        with pytest.raises(ValueError):
            geometric_mean([])
