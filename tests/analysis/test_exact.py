"""Tests for the exact Markov-chain solver, and the cross-validation of
both simulation engines against its ground truth."""

import pytest

from repro.analysis.exact import (
    colliding_weight,
    expected_absorption_interactions,
    is_absorbing,
    reachable_states,
    successors,
    worst_case_expected_interactions,
)
from repro.core.fastpath import CiwJumpSimulator, worst_case_ciw_counts
from repro.core.rng import make_rng
from repro.core.simulation import Simulation
from repro.protocols.cai_izumi_wada import SilentNStateSSR


class TestChainStructure:
    def test_absorbing_states(self):
        assert is_absorbing((1, 1, 1))
        assert not is_absorbing((2, 1, 0))

    def test_colliding_weight(self):
        assert colliding_weight((1, 1, 1)) == 0
        assert colliding_weight((3, 0, 0)) == 6
        assert colliding_weight((2, 2, 0, 0)) == 4

    def test_successors_move_one_agent_mod_n(self):
        moves = dict(successors((2, 1, 0)))
        assert moves == {(1, 2, 0): 2}
        wrap = dict(successors((0, 1, 2)))
        assert wrap == {(1, 1, 1): 2}

    def test_reachable_set_preserves_mass(self):
        for state in reachable_states((3, 1, 0, 0)):
            assert sum(state) == 4
            assert len(state) == 4

    def test_reachable_contains_an_absorbing_state(self):
        assert any(is_absorbing(s) for s in reachable_states((4, 0, 0, 0)))


class TestExpectedAbsorption:
    def test_absorbing_start_is_zero(self):
        assert expected_absorption_interactions((1, 1, 1)) == 0.0

    def test_two_agents_closed_form(self):
        # n=2, both at rank 0: one ordered pair collides out of 2.
        assert expected_absorption_interactions((2, 0)) == pytest.approx(1.0)

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_worst_case_closed_form(self, n):
        # The witness chain is a straight line of geometric waits:
        # E = n (n-1)^2 / 2 interactions.
        assert worst_case_expected_interactions(n) == pytest.approx(
            n * (n - 1) ** 2 / 2
        )

    def test_all_zero_start_is_finite_and_positive(self):
        value = expected_absorption_interactions((4, 0, 0, 0))
        assert value > 0
        assert value < 10_000


class TestSimulatorsMatchGroundTruth:
    """Both engines' mean interaction counts must match the exact chain."""

    N = 5
    TRIALS = 3000

    def exact(self) -> float:
        return expected_absorption_interactions(
            tuple(worst_case_ciw_counts(self.N))
        )

    def test_jump_simulator_mean(self):
        total = 0
        for trial in range(self.TRIALS):
            sim = CiwJumpSimulator(
                worst_case_ciw_counts(self.N), make_rng(1, "xjump", trial)
            )
            total += sim.run_to_convergence()
        mean = total / self.TRIALS
        assert mean == pytest.approx(self.exact(), rel=0.05)

    @pytest.mark.slow
    def test_sequential_engine_mean(self):
        protocol = SilentNStateSSR(self.N)
        total = 0
        trials = 800
        for trial in range(trials):
            rng = make_rng(2, "xseq", trial)
            monitor = protocol.convergence_monitor()
            sim = Simulation(
                protocol,
                protocol.worst_case_configuration(),
                rng=rng,
                monitors=[monitor],
            )
            while not monitor.correct:
                sim.step()
            total += sim.interactions
        mean = total / trials
        assert mean == pytest.approx(self.exact(), rel=0.08)

    def test_random_start_ground_truth(self):
        """A branching (non-line) start: exact vs jump simulator."""
        start = (4, 0, 1, 0, 0)  # four agents piled on rank 0
        exact = expected_absorption_interactions(start)
        total = 0
        for trial in range(self.TRIALS):
            sim = CiwJumpSimulator(list(start), make_rng(3, "xrand", trial))
            total += sim.run_to_convergence()
        assert total / self.TRIALS == pytest.approx(exact, rel=0.05)
