"""Tests for the epidemic and bounded-epidemic simulators."""

import pytest

from repro.analysis.bounded_epidemic import simulate_bounded_epidemic, tau_theory
from repro.analysis.epidemic import (
    one_way_epidemic_expected_time,
    simulate_one_way_epidemic,
    simulate_two_way_epidemic,
    two_way_epidemic_expected_time,
)
from repro.core.rng import make_rng


class TestEpidemicSimulators:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_one_way_epidemic(1, rng)
        with pytest.raises(ValueError):
            simulate_one_way_epidemic(5, rng, initial_infected=0)

    def test_fully_infected_start_finishes_instantly(self, rng):
        assert simulate_one_way_epidemic(5, rng, initial_infected=5) == 0

    def test_two_agents_need_exactly_the_meeting(self, rng):
        interactions = simulate_two_way_epidemic(2, rng)
        assert interactions >= 1

    def test_one_way_mean_matches_closed_form(self):
        n, trials = 64, 400
        total = 0
        for t in range(trials):
            total += simulate_one_way_epidemic(n, make_rng(5, "e", t))
        measured_time = total / trials / n
        assert measured_time == pytest.approx(
            one_way_epidemic_expected_time(n), rel=0.1
        )

    def test_two_way_is_twice_as_fast_in_expectation(self):
        n = 128
        assert two_way_epidemic_expected_time(n) == pytest.approx(
            one_way_epidemic_expected_time(n) / 2
        )

    def test_two_way_measured_vs_theory(self):
        n, trials = 64, 400
        total = sum(
            simulate_two_way_epidemic(n, make_rng(6, "e2", t)) for t in range(trials)
        )
        assert total / trials / n == pytest.approx(
            two_way_epidemic_expected_time(n), rel=0.1
        )


class TestBoundedEpidemic:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_bounded_epidemic(1, [1], rng)
        with pytest.raises(ValueError):
            simulate_bounded_epidemic(8, [], rng)
        with pytest.raises(ValueError):
            simulate_bounded_epidemic(8, [0], rng)

    def test_records_all_requested_ks(self, rng):
        result = simulate_bounded_epidemic(32, [1, 2, 4], rng)
        assert set(result.tau) == {1, 2, 4}

    def test_tau_monotone_in_k(self, rng):
        result = simulate_bounded_epidemic(64, [1, 2, 3], rng)
        assert result.tau[1] >= result.tau[2] >= result.tau[3]

    def test_budget_guard(self, rng):
        with pytest.raises(RuntimeError):
            simulate_bounded_epidemic(32, [1], rng, max_interactions=3)

    def test_tau1_mean_is_linear(self):
        # tau_1 requires the *ordered* interaction (source -> target):
        # probability 1/(n(n-1)) per step, so mean n - 1 parallel time.
        n, trials = 32, 300
        total = sum(
            simulate_bounded_epidemic(n, [1], make_rng(7, "tau", t)).tau[1]
            for t in range(trials)
        )
        assert total / trials == pytest.approx(n - 1, rel=0.2)

    def test_theory_curve(self):
        assert tau_theory(64, 1) == 64
        assert tau_theory(64, 2) == pytest.approx(16.0)
        with pytest.raises(ValueError):
            tau_theory(64, 0)
