"""Tests for repro.analysis.statecount (Table 1 "states" column)."""

import math

import pytest

from repro.analysis.statecount import (
    names_count,
    optimal_silent_state_count,
    roster_log2_count,
    silent_n_state_count,
    sublinear_state_log2_estimate,
    tree_node_budget,
)
from repro.protocols.optimal_silent import OptimalSilentSSR


class TestSilentNState:
    def test_exactly_n(self):
        assert silent_n_state_count(37) == 37

    def test_validation(self):
        with pytest.raises(ValueError):
            silent_n_state_count(1)


class TestOptimalSilent:
    def test_matches_protocol_counter(self):
        for n in (8, 32, 100):
            assert optimal_silent_state_count(n) == OptimalSilentSSR(n).state_count()

    def test_at_least_n(self):
        # Theorem 2.1: any SSLE protocol needs >= n states.
        for n in (8, 64, 512):
            assert optimal_silent_state_count(n) >= n

    def test_linear_growth(self):
        big = optimal_silent_state_count(1 << 12)
        small = optimal_silent_state_count(1 << 8)
        assert big / small < 32  # far below quadratic (would be 256)


class TestSublinearEstimates:
    def test_names_count(self):
        assert names_count(2) == 7  # eps, 0, 1, 00, 01, 10, 11

    def test_tree_node_budget(self):
        assert tree_node_budget(5, 0) == 1
        assert tree_node_budget(5, 2) == 1 + 4 + 16
        with pytest.raises(ValueError):
            tree_node_budget(5, -1)

    def test_roster_alone_is_exponential(self):
        # log2(#rosters) = Omega(n log n) => exponential states.
        n = 16
        bits = 3 * math.ceil(math.log2(n))
        assert roster_log2_count(n, bits) > n  # far more than poly(n) bits

    def test_estimate_grows_with_h(self):
        low = sublinear_state_log2_estimate(16, 1)
        high = sublinear_state_log2_estimate(16, 3)
        assert high > low > 0

    def test_h_scaling_matches_paper_shape(self):
        # log(states) = Theta(n^H log n): increasing one H multiplies the
        # log by roughly n (up to the additive roster term).
        n = 16
        h2 = sublinear_state_log2_estimate(n, 2)
        h3 = sublinear_state_log2_estimate(n, 3)
        assert 4 < h3 / h2 < 2 * n
