"""Tests for repro.analysis.harmonic."""

import math

import pytest

from repro.analysis.harmonic import harmonic


class TestHarmonic:
    def test_small_exact_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic(-1)

    def test_asymptotic_branch_continuous(self):
        # The expansion used beyond 10_000 agrees with the direct sum.
        direct = sum(1.0 / i for i in range(1, 20_001))
        assert harmonic(20_000) == pytest.approx(direct, rel=1e-12)

    def test_grows_like_log(self):
        assert harmonic(100_000) == pytest.approx(
            math.log(100_000) + 0.5772156649, abs=1e-4
        )
