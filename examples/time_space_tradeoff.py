#!/usr/bin/env python3
"""The paper's central trade-off: stabilization time vs state space.

Table 1 in one picture: the baseline protocol is tiny (n states) but
quadratic-time; Optimal-Silent-SSR is linear in both; Sublinear-Time-SSR
buys speed -- down to O(log n) at H = log2 n -- with an (at least)
exponential state space.  This script measures all of them at one
population size and prints the trade-off table, including the
Theta(H * n^(1/(H+1))) collision-detection sweep.

Run:  python examples/time_space_tradeoff.py
"""

import math

from repro import (
    OptimalSilentSSR,
    SilentNStateSSR,
    Simulation,
    SublinearTimeSSR,
    make_rng,
)
from repro.analysis.statecount import (
    optimal_silent_state_count,
    silent_n_state_count,
    sublinear_state_log2_estimate,
)
from repro.core.fastpath import CiwJumpSimulator, worst_case_ciw_counts
from repro.experiments.common import measure_convergence
from repro.experiments.hsweep import collision_start

N = 16
TRIALS = 5
SEED = 5


def ciw_time() -> float:
    total = 0.0
    for trial in range(TRIALS):
        sim = CiwJumpSimulator(
            worst_case_ciw_counts(N), make_rng(SEED, "ciw", trial)
        )
        sim.run_to_convergence()
        total += sim.parallel_time
    return total / TRIALS


def optimal_silent_time() -> float:
    total = 0.0
    for trial in range(TRIALS):
        rng = make_rng(SEED, "os", trial)
        protocol = OptimalSilentSSR(N)
        outcome = measure_convergence(
            protocol, protocol.random_configuration(rng), rng=rng, max_time=50_000
        )
        total += outcome.convergence_time
    return total / TRIALS


def sublinear_time(h: int) -> float:
    total = 0.0
    for trial in range(TRIALS):
        rng = make_rng(SEED, "sub", h, trial)
        protocol = SublinearTimeSSR(N, h=h)
        outcome = measure_convergence(
            protocol,
            collision_start(protocol, rng),
            rng=rng,
            max_time=50_000,
            confirm_time=25 + 4 * math.log(N),
        )
        total += outcome.convergence_time
    return total / TRIALS


def main() -> None:
    print(f"Time/space trade-off at n = {N} ({TRIALS} trials per cell)\n")
    header = f"{'protocol':38} {'mean time':>10}   {'states':>12}"
    print(header)
    print("-" * len(header))

    print(
        f"{'Silent-n-state-SSR (baseline)':38} {ciw_time():>10.1f}   "
        f"{silent_n_state_count(N):>12}"
    )
    print(
        f"{'Optimal-Silent-SSR':38} {optimal_silent_time():>10.1f}   "
        f"{optimal_silent_state_count(N):>12}"
    )
    for h in (0, 1, 2, int(math.log2(N))):
        log2_states = sublinear_state_log2_estimate(N, h)
        print(
            f"{f'Sublinear-Time-SSR (H={h})':38} {sublinear_time(h):>10.1f}   "
            f"{'2^' + format(log2_states, '.0f'):>12}"
        )

    print(
        "\nReading guide: time falls as H grows (detection ~ H * n^(1/(H+1)))"
        "\nwhile the state space explodes -- the paper's open question is"
        "\nwhether sublinear time is possible with subexponential states."
    )


if __name__ == "__main__":
    main()
