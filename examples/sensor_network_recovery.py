#!/usr/bin/env python3
"""The paper's motivating scenario: a sensor fleet that heals itself.

Imagine mobile sensors in a harsh environment (Section 1: rescue or
monitoring operations) that coordinate through a leader.  Transient
faults -- radiation, brownouts, memory corruption -- repeatedly scramble
some sensors' memories, *undetectably*: no sensor knows whether its own
state is garbage.

A self-stabilizing protocol needs no detection and no reinitialization:
whatever the fault did, the population converges back to a unique
leader.  This script runs Optimal-Silent-SSR through five fault bursts
of increasing severity (up to every agent corrupted at once) and prints
the recovery timeline.

Run:  python examples/sensor_network_recovery.py
"""

from repro import OptimalSilentSSR, Simulation, make_rng
from repro.core.adversary import corrupted_configuration
from repro.core.configuration import is_silent

N = 24
SEED = 77
FAULT_BURSTS = [2, 4, 8, 16, 24]  # corrupted sensors per burst


def stabilize(protocol, states, rng):
    """Run to a silent correct configuration; return (time, states)."""
    monitor = protocol.convergence_monitor()
    sim = Simulation(protocol, states, rng=rng, monitors=[monitor])
    while not (monitor.correct and is_silent(protocol, sim.states)):
        sim.run(N)
    return sim.parallel_time, list(sim.states)


def main() -> None:
    protocol = OptimalSilentSSR(N)
    rng = make_rng(SEED, "sensors")

    print(f"Deploying {N} sensors with arbitrary initial memory...")
    elapsed, states = stabilize(protocol, protocol.random_configuration(rng), rng)
    leader = next(i for i, s in enumerate(states) if protocol.is_leader(s))
    print(f"  initial stabilization: {elapsed:6.1f} time -> leader = sensor {leader}\n")

    for burst, corruptions in enumerate(FAULT_BURSTS, start=1):
        states = corrupted_configuration(protocol, states, rng, corruptions)
        still_correct = protocol.is_correct(states)
        print(
            f"FAULT BURST {burst}: {corruptions}/{N} sensors corrupted "
            f"(ranking {'survived' if still_correct else 'destroyed'})"
        )
        elapsed, states = stabilize(protocol, states, rng)
        leader = next(i for i, s in enumerate(states) if protocol.is_leader(s))
        print(f"  recovered in {elapsed:6.1f} time -> leader = sensor {leader}")

    print("\nEvery burst healed without any fault detection or manual reset:")
    print("that is the self-stabilization guarantee (correct from ANY state).")


if __name__ == "__main__":
    main()
