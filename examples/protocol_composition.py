#!/usr/bin/env python3
"""Composing self-stabilizing leader election with downstream work.

Section 1 notes that self-stabilizing protocols compose cleanly: a
downstream protocol driven by the leader can start from *any* state --
including states scribbled over by whatever ran before -- because once
SSLE stabilizes, the downstream protocol simply finds itself in "some
arbitrary configuration" and recovers on its own.

This script composes Optimal-Silent-SSR with a toy downstream task:
**broadcast the leader's firmware version**.  Every agent carries a
``version`` register (initially garbage); whenever two agents meet, each
copies the version from the agent it believes outranks it, and the
leader (rank 1) holds its own version authoritative.  We corrupt both
layers mid-run and watch the composition heal end to end.

Run:  python examples/protocol_composition.py
"""

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import OptimalSilentSSR, Simulation, make_rng
from repro.core.protocol import PopulationProtocol
from repro.protocols.optimal_silent import OptimalSilentAgent

N = 16
SEED = 31
LEADER_VERSION = 42


@dataclass
class ComposedAgent:
    """Leader-election layer + downstream version register."""

    election: OptimalSilentAgent
    version: int


class VersionBroadcast(PopulationProtocol[ComposedAgent]):
    """Optimal-Silent-SSR composed with leader-version broadcast.

    The downstream rule is deliberately naive -- copy the version from
    any agent with a smaller rank -- and is *wrong* while the election
    layer is wrong.  Composition works anyway: the election layer
    stabilizes from any state, after which the broadcast layer's own
    (trivial) self-stabilization takes over.
    """

    def __init__(self, n: int):
        super().__init__(n)
        self.election = OptimalSilentSSR(n)

    def transition(
        self, a: ComposedAgent, b: ComposedAgent, rng: random.Random
    ) -> Tuple[ComposedAgent, ComposedAgent]:
        a.election, b.election = self.election.transition(a.election, b.election, rng)
        rank_a = self.election.rank_of(a.election)
        rank_b = self.election.rank_of(b.election)
        # The leader re-asserts its own version; others copy downward.
        for agent, rank in ((a, rank_a), (b, rank_b)):
            if rank == 1:
                agent.version = LEADER_VERSION
        if rank_a is not None and rank_b is not None:
            if rank_a < rank_b:
                b.version = a.version
            elif rank_b < rank_a:
                a.version = b.version
        return a, b

    def initial_state(self, rng: random.Random) -> ComposedAgent:
        return ComposedAgent(
            election=self.election.initial_state(rng),
            version=rng.randrange(1000),  # downstream garbage
        )

    def random_state(self, rng: random.Random) -> ComposedAgent:
        return ComposedAgent(
            election=self.election.random_state(rng),
            version=rng.randrange(1000),
        )

    def is_correct(self, states) -> bool:
        return self.election.is_correct([s.election for s in states]) and all(
            s.version == LEADER_VERSION for s in states
        )

    def summarize(self, state: ComposedAgent):
        return (self.election.summarize(state.election), state.version)


def run_until_converged(protocol: VersionBroadcast, states, rng) -> float:
    sim = Simulation(protocol, states, rng=rng)
    while not protocol.is_correct(sim.states):
        sim.run(N)
    return sim.parallel_time


def main() -> None:
    protocol = VersionBroadcast(N)
    rng = make_rng(SEED, "compose")

    states = [protocol.random_state(rng) for _ in range(N)]
    versions = sorted({s.version for s in states})
    print(f"{N} agents; downstream version registers start as garbage:")
    print(f"  {len(versions)} distinct bogus versions, e.g. {versions[:6]}\n")

    elapsed = run_until_converged(protocol, states, rng)
    print(
        f"After {elapsed:.1f} time: a unique leader exists and every agent "
        f"runs version {LEADER_VERSION}."
    )

    # Corrupt BOTH layers of half the population, mid-flight.
    sim_states = states  # run_until_converged mutated in place via Simulation
    for index in range(0, N, 2):
        sim_states[index] = protocol.random_state(rng)
    print(f"\nCorrupting both layers of {N // 2} agents...")
    elapsed = run_until_converged(protocol, sim_states, rng)
    print(
        f"Healed end-to-end in {elapsed:.1f} time -- no layer was ever "
        "reinitialized."
    )


if __name__ == "__main__":
    main()
