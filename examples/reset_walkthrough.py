#!/usr/bin/env python3
"""Watch one full recovery of Optimal-Silent-SSR, phase by phase.

The paper's Section 3-4 machinery in a single narrated run: we plant a
rank collision (two agents both holding rank 1), then log every phase
transition of the population as the protocol

1. detects the collision (the duplicates meet),
2. propagates the reset by epidemic (``resetcount`` wave),
3. goes dormant and runs the slow ``L, L -> L, F`` leader election,
4. awakens -- the surviving leader settles at rank 1 -- and
5. ranks everyone else along the full binary tree.

Run:  python examples/reset_walkthrough.py
"""

from collections import Counter

from repro import OptimalSilentSSR, Simulation, make_rng
from repro.core.configuration import is_silent
from repro.protocols.optimal_silent import LEADER, Role

N = 10
SEED = 12


def population_phase(protocol, states) -> str:
    """A coarse, human-readable label of the population's current phase."""
    roles = Counter(s.role for s in states)
    if roles[Role.RESETTING] == 0:
        unsettled = roles[Role.UNSETTLED]
        if unsettled == 0:
            ranks = sorted(s.rank for s in states)
            status = "CORRECT" if ranks == list(range(1, protocol.n + 1)) else "COLLIDING"
            return f"computing: all settled ({status} ranking)"
        return f"computing: ranking in progress ({unsettled} unsettled)"
    propagating = sum(
        1 for s in states if s.role is Role.RESETTING and s.resetcount > 0
    )
    dormant = roles[Role.RESETTING] - propagating
    leaders = sum(
        1 for s in states if s.role is Role.RESETTING and s.leader == LEADER
    )
    if propagating:
        return (
            f"reset wave: {propagating} propagating, {dormant} dormant, "
            f"{roles[Role.SETTLED] + roles[Role.UNSETTLED]} not yet recruited"
        )
    awake = roles[Role.SETTLED] + roles[Role.UNSETTLED]
    if awake:
        return (
            f"awakening: {awake} awake, {dormant} still sleeping "
            f"({leaders} candidate(s) left asleep)"
        )
    return f"dormant election: {dormant} sleeping, {leaders} leader candidate(s)"


def main() -> None:
    protocol = OptimalSilentSSR(N)
    rng = make_rng(SEED, "walkthrough")
    states = protocol.duplicate_rank_configuration(rank=1)

    print(f"n = {N}; planted error: two agents both hold rank 1\n")
    print(f"{'time':>7}  phase")
    print("-" * 64)

    sim = Simulation(protocol, states, rng=rng)
    last_phase = population_phase(protocol, sim.states)
    print(f"{sim.parallel_time:7.1f}  {last_phase}")

    while not (
        protocol.is_correct(sim.states) and is_silent(protocol, sim.states)
    ):
        sim.step()
        phase = population_phase(protocol, sim.states)
        if phase != last_phase:
            print(f"{sim.parallel_time:7.1f}  {phase}")
            last_phase = phase

    print("-" * 64)
    leader = next(i for i, s in enumerate(sim.states) if protocol.is_leader(s))
    print(
        f"{sim.parallel_time:7.1f}  stabilized: unique ranking, leader = agent "
        f"{leader}, configuration silent"
    )
    print("\nRank assignment (agent: rank):")
    print(
        "  "
        + ", ".join(
            f"a{i}:{protocol.rank_of(s)}" for i, s in enumerate(sim.states)
        )
    )


if __name__ == "__main__":
    main()
