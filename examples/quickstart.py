#!/usr/bin/env python3
"""Quickstart: self-stabilizing leader election from a hostile start.

We hand Optimal-Silent-SSR (the paper's linear-time, linear-state,
silent protocol) a population of 16 agents whose memories have been
filled with garbage -- random roles, duplicate ranks, half-finished
resets -- and watch it converge to a unique ranking 1..n, which makes
the rank-1 agent the unique leader.  Because the protocol is
self-stabilizing, *any* starting configuration would have worked.

Run:  python examples/quickstart.py
"""

from repro import OptimalSilentSSR, Simulation, count_leaders, make_rng
from repro.core.configuration import is_silent

N = 16
SEED = 2021  # the paper's PODC year


def main() -> None:
    protocol = OptimalSilentSSR(N)
    rng = make_rng(SEED, "quickstart")

    # Adversarial start: every agent gets an independently random state.
    states = protocol.random_configuration(rng)
    print(f"Population of {N} agents, adversarial start:")
    for index, state in enumerate(states[:5]):
        print(f"  agent {index}: {protocol.describe(state)}")
    print(f"  ... ({N - 5} more)\n")

    monitor = protocol.convergence_monitor()
    sim = Simulation(protocol, states, rng=rng, monitors=[monitor])
    while not (monitor.correct and is_silent(protocol, sim.states)):
        sim.run(N)  # probe every ~1 unit of parallel time

    print(f"Stabilized after {sim.parallel_time:.1f} parallel time")
    print(f"  ({sim.interactions} pairwise interactions)\n")

    ranks = sorted((protocol.rank_of(s), i) for i, s in enumerate(sim.states))
    print("Final ranking (rank -> agent):")
    print("  " + ", ".join(f"{rank}->a{agent}" for rank, agent in ranks))

    leaders = [i for i, s in enumerate(sim.states) if protocol.is_leader(s)]
    assert count_leaders(protocol, sim.states) == 1
    print(f"\nUnique leader elected: agent {leaders[0]} (rank 1)")
    print("The configuration is silent: no agent will ever change state again.")


if __name__ == "__main__":
    main()
